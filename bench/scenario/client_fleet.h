// ClientFleet: open-loop execution of a workload personality against a
// deployed SCFS instance, multiplexing thousands to millions of simulated
// clients without a thread per client.
//
// Clients are *virtual*: a client is an id. The fleet draws an aggregate
// arrival schedule (OpenLoopArrivals) on the virtual clock; each arrival is
// attributed to a uniformly chosen client id, and everything that client
// "decides" — which op, which file, which offset — comes from a
// deterministic per-(client, op-counter) RNG stream (Rng::ForStream /
// MixSeed), so a million-client run touches memory only for the clients
// that actually issued ops and replays bit-identically under a fixed seed.
//
// Execution is a bounded pool of worker threads popping pending operations
// FIFO and running them against a small set of mounted SCFS agents.
// Latency is measured from the operation's *scheduled arrival time*, not
// from when a worker got to it — queueing delay under overload lands in
// the tail percentiles instead of silently throttling the load
// (coordinated omission). Arrivals never block on completions; a saturated
// deployment shows up as backlog growth, drain drops and p99 inflation.

#ifndef SCFS_BENCH_SCENARIO_CLIENT_FLEET_H_
#define SCFS_BENCH_SCENARIO_CLIENT_FLEET_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/scenario/latency_recorder.h"
#include "bench/scenario/personality.h"
#include "bench/scenario/samplers.h"
#include "src/common/status.h"
#include "src/coord/lease.h"
#include "src/coord/smr.h"
#include "src/fsapi/file_system.h"
#include "src/sim/arrivals.h"
#include "src/sim/environment.h"

namespace scfs {

class Deployment;

struct FleetConfig {
  // Simulated client population (ids; memory is O(clients that issued)).
  uint64_t clients = 1000;
  // Aggregate offered load across the population, in ops per virtual
  // second.
  double offered_ops_per_s = 100;
  // Arrival window (virtual time). Ops scheduled inside the window may
  // complete after it; see drain_grace.
  VirtualDuration duration = 8 * kSecond;
  // Worker threads executing pending ops (the agent-side concurrency).
  unsigned workers = 64;
  // After the arrival window, how long to keep draining the backlog before
  // counting the remainder as dropped.
  VirtualDuration drain_grace = 4 * kSecond;
  // Non-zero: also aggregate executed/errors/latency into fixed-width
  // timeline buckets keyed by *scheduled arrival* (virtual time since run
  // start). The fault benches intersect these with chaos-campaign windows
  // to report goodput inside faults and recovery time after them.
  VirtualDuration timeline_bucket = 0;
  // Non-zero: before the counter baselines are captured, each mount issues
  // this many metadata reads against the fileset (priming caches/leases)
  // and the per-worker append logs are precreated, so steady-state runs
  // measure steady-state cost rather than first-touch cold misses. Filebench
  // personalities similarly separate fileset prealloc from measurement.
  unsigned warmup_reads_per_mount = 0;
  uint64_t seed = 42;
};

// One timeline bucket: everything scheduled within [start, start + width).
struct FleetTimelineBucket {
  VirtualDuration start = 0;  // offset from run start
  uint64_t executed = 0;
  uint64_t errors = 0;
  LatencyRecorder latency;
};

struct FleetResult {
  uint64_t issued = 0;     // ops scheduled
  uint64_t executed = 0;   // ops a worker ran (success or error)
  uint64_t errors = 0;     // ops that returned non-OK (e.g. BUSY lock race)
  uint64_t dropped = 0;    // backlog discarded when drain_grace expired
  uint64_t touched_clients = 0;

  double offered_ops_per_s = 0;
  // Successful ops per virtual second over the whole run (arrivals +
  // drain). Tracks offered until the knee, then flattens at saturation.
  double achieved_ops_per_s = 0;
  double duration_s = 0;
  size_t max_backlog = 0;

  LatencyRecorder latency;  // all executed ops, from scheduled arrival
  std::array<LatencyRecorder, kScenarioOpCount> per_op_latency;
  std::array<uint64_t, kScenarioOpCount> per_op_issued{};
  std::array<uint64_t, kScenarioOpCount> per_op_errors{};

  // Coordination-plane work attributable to this run (counter deltas; zero
  // for deployments without an SMR coordination service).
  SmrCounters coord;
  double coord_msgs_per_op = 0;        // total SMR messages / successful op
  double coord_ordered_per_op = 0;     // ordered commands / successful op
  double coord_fast_reads_per_op = 0;  // fast-path reads / successful op

  // Lease-plane work attributable to this run (counter deltas; all zero for
  // deployments with leases disabled). local_hits counts metadata reads the
  // clients answered from a live lease with zero coordination messages.
  LeaseCounters lease;
  double lease_hit_share = 0;  // local_hits / successful op

  // Partitioned deployments only: per-partition coordination ops/s over the
  // run and the busiest partition's share of that total (both from windowed
  // counter deltas bracketing the run, the same definition the elastic
  // split controller applies). route_epoch_retries counts commands this run
  // that were rejected for routing with a stale map and transparently
  // retried — the lazy route-map distribution's visible cost.
  std::vector<double> partition_ops_per_s;
  double hot_partition_share = 0;
  uint64_t route_epoch_retries = 0;

  // Virtual time the arrival window opened (for intersecting the timeline
  // with absolute fault windows) and the buckets themselves; empty unless
  // FleetConfig::timeline_bucket > 0.
  VirtualTime run_start = 0;
  VirtualDuration timeline_bucket = 0;
  std::vector<FleetTimelineBucket> timeline;
};

class ClientFleet {
 public:
  // `mounts` are SCFS agents (or any FileSystem) the workers execute
  // against, round-robin by worker index; they must outlive the fleet.
  // `deployment` is optional and only used for coordination-plane
  // accounting and the partition-skew fileset layout.
  ClientFleet(Environment* env, PersonalitySpec spec,
              std::vector<FileSystem*> mounts, Deployment* deployment);

  // Creates the directory tree and the personality's fileset (in parallel
  // across mounts), then waits for the agents' write pipelines to settle.
  // With spec.partition_skew, fileset names are generated so each file's
  // metadata key AND lock key land on the same coordination partition, and
  // files are grouped per partition (Zipf rank r = partition r).
  Status Setup();

  // One open-loop run. Setup() must have succeeded; multiple Runs against
  // one fleet reuse the fileset (a rate sweep).
  FleetResult Run(const FleetConfig& config);

  const PersonalitySpec& spec() const { return spec_; }

 private:
  struct PendingOp {
    VirtualTime scheduled = 0;
    ScenarioOp op = ScenarioOp::kStat;
    // Index into fileset_, or kNoFile for ops that resolve their own path
    // (per-worker append logs, create, delete).
    uint32_t file = 0;
    uint64_t offset = 0;
    uint64_t unique = 0;  // distinct id for created files
  };
  static constexpr uint32_t kNoFile = 0xffffffffu;

  struct WorkerStats {
    LatencyRecorder latency;
    std::array<LatencyRecorder, kScenarioOpCount> per_op_latency;
    std::array<uint64_t, kScenarioOpCount> per_op_errors{};
    uint64_t executed = 0;
    uint64_t errors = 0;
  };

  Status SetupFileset();
  Status SetupPartitionSkewFileset();
  PendingOp MakeOp(VirtualTime scheduled, Rng* rng);
  Status ExecuteOp(FileSystem* fs, unsigned worker, const PendingOp& op);
  Status DoAppend(FileSystem* fs, const std::string& path);
  void WorkerLoop(unsigned worker, WorkerStats* stats);

  Environment* env_;
  PersonalitySpec spec_;
  std::vector<FileSystem*> mounts_;
  Deployment* deployment_;

  std::vector<std::string> fileset_;
  // partition_skew: fileset_ is grouped by partition rank; group r is
  // fileset_[group_start_[r] .. group_start_[r + 1]).
  std::vector<size_t> group_start_;
  std::unique_ptr<ZipfSampler> file_sampler_;   // over fileset_ (or groups)
  std::array<double, kScenarioOpCount> mix_cdf_{};

  // Paths created by kCreate and not yet consumed by kDelete.
  std::mutex pool_mu_;
  std::vector<std::string> deletable_;
  std::atomic<uint64_t> create_seq_{0};

  // Pre-built payloads, shared read-only by all workers.
  Bytes file_data_;
  Bytes io_data_;
  Bytes append_data_;

  // Run state (rebuilt per Run).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingOp> queue_;
  bool done_ = false;
  size_t max_backlog_ = 0;

  // Timeline aggregation (active when timeline_bucket_ > 0): workers fold
  // completed ops into the bucket their *scheduled* time falls in. Shared
  // and mutex-guarded — bucket appends are rare relative to op execution.
  std::mutex timeline_mu_;
  std::vector<FleetTimelineBucket> timeline_;
  VirtualTime run_start_ = 0;
  VirtualDuration timeline_bucket_ = 0;
};

// Sweeps offered load over `rates` (one Run per rate against the same
// fleet/fileset) and reports the knee — the largest offered rate at which
// the arrival queue stayed bounded (no drops, backlog within two service
// rounds) — and the saturation throughput (max achieved rate seen).
struct RateSweepResult {
  std::vector<FleetResult> points;
  double knee_offered_ops_s = 0;
  double saturation_ops_s = 0;
};

RateSweepResult RunRateSweep(ClientFleet* fleet, FleetConfig base,
                             const std::vector<double>& rates);

}  // namespace scfs

#endif  // SCFS_BENCH_SCENARIO_CLIENT_FLEET_H_
