// Async pipeline microbenchmark: quantifies the two wins of the Future-based
// storage redesign against the still-available synchronous paths.
//
//  1. Non-blocking close: a burst of dirty closes through CloseAsync overlaps
//     the level-1 disk flushes (and the whole upload pipeline), where the
//     blocking Close() pays each flush serially.
//  2. DepSky f=1 write/read: the async ObjectStore API fans shard PUTs and
//     metadata round trips out to all clouds and returns at the n-f quorum;
//     the sync path (default inline adapters, used by any backend that does
//     not override the async API) pays every cloud in sequence.
//
// Times are modelled virtual time charged to the calling thread — the same
// deterministic metric the Table 3 harness reports (elapsed real time at
// bench scale is dominated by unmodelled compute, so the charged wall time
// is what the overlap shows up in).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/cloud/providers.h"
#include "src/cloud/simulated_cloud.h"
#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/crypto/sha1.h"
#include "src/depsky/depsky.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

constexpr int kCloseBurst = 16;
constexpr size_t kFileSize = 64 * 1024;
constexpr int kDepSkyOps = 8;

// Forwards the blocking API and inherits the default inline async adapters:
// exactly what a provider that never implemented the async API looks like.
class SyncOnlyStore : public ObjectStore {
 public:
  explicit SyncOnlyStore(ObjectStore* inner) : inner_(inner) {}

  using ObjectStore::Put;
  Status Put(const CloudCredentials& creds, const std::string& key,
             std::shared_ptr<const Bytes> data) override {
    return inner_->Put(creds, key, std::move(data));
  }
  Result<Bytes> Get(const CloudCredentials& creds,
                    const std::string& key) override {
    return inner_->Get(creds, key);
  }
  Status Delete(const CloudCredentials& creds,
                const std::string& key) override {
    return inner_->Delete(creds, key);
  }
  Result<std::vector<ObjectInfo>> List(const CloudCredentials& creds,
                                       const std::string& prefix) override {
    return inner_->List(creds, prefix);
  }
  Status SetAcl(const CloudCredentials& creds, const std::string& key,
                const CanonicalId& grantee,
                ObjectPermissions permissions) override {
    return inner_->SetAcl(creds, key, grantee, permissions);
  }
  Result<ObjectAcl> GetAcl(const CloudCredentials& creds,
                           const std::string& key) override {
    return inner_->GetAcl(creds, key);
  }
  const std::string& provider_name() const override {
    return inner_->provider_name();
  }

 private:
  ObjectStore* inner_;
};

Bytes MakePayload(size_t size, uint8_t salt) {
  Bytes data(size);
  for (size_t i = 0; i < size; ++i) {
    data[i] = static_cast<uint8_t>((i * 31 + salt) & 0xff);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Part 1: non-blocking-mode close burst, sync vs async.
// ---------------------------------------------------------------------------

std::string FormatMs(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return std::string(buf);
}

std::string FormatSpeedup(double base, double improved) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fx", improved > 0 ? base / improved : 0.0);
  return std::string(buf);
}

void RunCloseBurst(Environment* env) {
  auto run = [&](bool use_async, double* charged_ms) {
    DeploymentOptions options;
    options.backend = ScfsBackendKind::kAws;
    auto deployment = Deployment::Create(env, options);
    ScfsOptions fs_options;
    fs_options.mode = ScfsMode::kNonBlocking;
    auto fs = deployment->Mount("u", fs_options);
    if (!fs.ok()) {
      *charged_ms = -1;
      return;
    }

    std::vector<FileHandle> handles;
    for (int i = 0; i < kCloseBurst; ++i) {
      auto fh = (*fs)->Open("/f" + std::to_string(i),
                            kOpenWrite | kOpenCreate);
      if (!fh.ok()) {
        *charged_ms = -1;
        return;
      }
      (void)(*fs)->Write(*fh, 0, MakePayload(kFileSize, static_cast<uint8_t>(i)));
      handles.push_back(*fh);
    }

    Environment::ResetThreadCharged();
    if (use_async) {
      std::vector<Future<Status>> closes;
      closes.reserve(handles.size());
      for (FileHandle fh : handles) {
        closes.push_back((*fs)->CloseAsync(fh));
      }
      (void)WhenAll<Status>(std::move(closes)).Get();
    } else {
      for (FileHandle fh : handles) {
        (void)(*fs)->Close(fh);
      }
    }
    *charged_ms = ToSeconds(Environment::ThreadCharged()) * 1e3;
    (void)(*fs)->SyncBarrier();
    (void)(*fs)->Unmount();
  };

  double sync_charged = 0;
  double async_charged = 0;
  run(false, &sync_charged);
  run(true, &async_charged);

  PrintHeader("Non-blocking close: burst of " + std::to_string(kCloseBurst) +
              " dirty closes (charged level-1 latency, ms)");
  std::vector<int> widths = {34, 14, 9};
  PrintRow({"path", "charged ms", "speedup"}, widths);
  PrintRow({"sync Close() x" + std::to_string(kCloseBurst),
            FormatMs(sync_charged), "1.0x"}, widths);
  PrintRow({"CloseAsync() + WhenAll", FormatMs(async_charged),
            FormatSpeedup(sync_charged, async_charged)}, widths);
}

// ---------------------------------------------------------------------------
// Part 2: DepSky f=1 write/read, sync ObjectStore API vs async fan-out.
// ---------------------------------------------------------------------------

void RunDepSky(Environment* env) {
  // The four storage clouds of the paper's CoC deployment, with their
  // distinct wide-area latencies — what makes quorum waits pay off.
  std::vector<ProviderId> providers = {
      ProviderId::kAmazonS3, ProviderId::kGoogleStorage,
      ProviderId::kAzureBlob, ProviderId::kRackspaceFiles};

  auto run = [&](bool use_async, double* write_ms, double* read_ms) {
    std::vector<std::unique_ptr<SimulatedCloud>> clouds;
    std::vector<std::unique_ptr<SyncOnlyStore>> wrappers;
    std::vector<DepSkyCloud> depsky_clouds;
    for (size_t i = 0; i < providers.size(); ++i) {
      clouds.push_back(MakeCloud(providers[i], env, 1000 + i));
      DepSkyCloud entry;
      if (use_async) {
        entry.store = clouds.back().get();
      } else {
        wrappers.push_back(
            std::make_unique<SyncOnlyStore>(clouds.back().get()));
        entry.store = wrappers.back().get();
      }
      entry.creds = CloudCredentials{"u"};
      depsky_clouds.push_back(entry);
    }
    DepSkyConfig config;
    config.f = 1;
    config.auth_key = ToBytes("bench-auth-key");
    DepSkyClient client(env, std::move(depsky_clouds), config, 77);

    VirtualDuration write_charged = 0;
    VirtualDuration read_charged = 0;
    for (int i = 0; i < kDepSkyOps; ++i) {
      Bytes payload = MakePayload(kFileSize, static_cast<uint8_t>(i));
      const std::string hash = HexEncode(Sha1::Hash(payload));
      Environment::ResetThreadCharged();
      auto written = client.WriteVersion("unit", hash, payload);
      write_charged += Environment::ThreadCharged();
      if (!written.ok()) {
        *write_ms = *read_ms = -1;
        return;
      }
      // Let the providers' eventual-consistency windows (up to ~1.35s) pass
      // so the fresh metadata is visible — SCFS's anchor read loop would
      // otherwise retry through them, obscuring the protocol latency.
      env->Sleep(2 * kSecond);
      Environment::ResetThreadCharged();
      auto read = client.ReadByHash("unit", hash);
      read_charged += Environment::ThreadCharged();
      if (!read.ok()) {
        *write_ms = *read_ms = -1;
        return;
      }
    }
    *write_ms = ToSeconds(write_charged) * 1e3 / kDepSkyOps;
    *read_ms = ToSeconds(read_charged) * 1e3 / kDepSkyOps;
  };

  double sync_write = 0, sync_read = 0, async_write = 0, async_read = 0;
  run(false, &sync_write, &sync_read);
  run(true, &async_write, &async_read);

  PrintHeader("DepSky f=1 (4 clouds, 64KB): per-op modelled latency (ms)");
  std::vector<int> widths = {34, 14, 14};
  PrintRow({"path", "write ms", "read ms"}, widths);
  char buf[64];
  auto fmt = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return std::string(buf);
  };
  PrintRow({"sync ObjectStore API (serial)", fmt(sync_write), fmt(sync_read)},
           widths);
  PrintRow({"async fan-out + quorum waits", fmt(async_write), fmt(async_read)},
           widths);
  std::printf("  write speedup: %.1fx   read speedup: %.1fx\n",
              async_write > 0 ? sync_write / async_write : 0.0,
              async_read > 0 ? sync_read / async_read : 0.0);
}

void RunAll() {
  auto env = Environment::Scaled(BenchTimeScale());
  RunCloseBurst(env.get());
  RunDepSky(env.get());
  std::printf(
      "\nPaper shape check: CloseAsync burst charges ~one level-1 flush\n"
      "(close latency independent of burst size) vs. burst-size flushes for\n"
      "sync Close(); DepSky async write ~2-3x and read ~2-3x faster than the\n"
      "serial sync path, since quorum waits cost max-of-(n-f) cloud round\n"
      "trips instead of the sum over all n clouds.\n");
}

}  // namespace
}  // namespace scfs

int main() {
  scfs::RunAll();
  return 0;
}
