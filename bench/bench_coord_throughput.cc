// Coordination-plane throughput: closed-loop multi-client benchmarks over
// the replicated SMR cluster (the consistency anchor of every shared-file
// metadata operation, paper §3.2 / Table 3).
//
// Workloads 1-3 run twice on the same in-binary cluster code:
//
//   seed      batching + read fast path disabled, one consensus instance at
//             a time (the pre-batching lock-step configuration)
//   batched   leader batching + pipelining + read-only fast path (defaults)
//
//   1. ordered    32 closed-loop clients issuing writes (totally ordered)
//   2. reads      32 closed-loop clients issuing reads of their own keys
//   3. mixed      Table-3-style metadata loop per client: create + getattr
//                 burst (3 reads) + lock/unlock + publish
//   4. recovery   a replica lags far beyond the executed-batch window while
//                 crashed, restarts, and rejoins via snapshot state
//                 transfer; reports the rejoin latency
//   5. accum      ordered workload swept over the leader's batch
//                 accumulation delay (0 / half / one replica one-way):
//                 batch factor vs added write latency
//   6. partition  the partitioned coordination plane: a mixed workload
//                 (writes + getattr-style fast reads + lock pairs) from 32
//                 clients x 8 concurrent streams, swept over 1/2/4/8 SMR
//                 partitions with a capacity-bound per-partition pipeline;
//                 reports per-partition and aggregate ordered throughput
//   7. lease      grant/serve/revoke amortization of the lease plane
//   8. split      the elastic coordination plane: a skewed closed-loop
//                 workload concentrates 2/3 of traffic on partition 0 of a
//                 2-active + 1-spare deployment with the load-aware split
//                 controller on; the bench measures aggregate ops/s before
//                 and after the automatic split and compares the post-split
//                 plane against a statically balanced 3-partition deployment
//                 (recovery ratio, gated >= 0.8 in CI), then audits the key
//                 population for lost or duplicated entries
//
// Elapsed time is virtual (the environment clock), so results measure the
// modelled protocol and queueing delays, not host speed. Emits
// BENCH_coord.json via the shared harness.
//
// Usage: bench_coord_throughput [--quick] [--json PATH]

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/cloud/providers.h"
#include "src/coord/partitioned_coordination.h"
#include "src/coord/smr.h"

namespace scfs {
namespace {

struct Options {
  bool quick = false;
  std::string json_path = "BENCH_coord.json";
};

// The coordination round trips are tens of modelled milliseconds; run them
// at a scale where scheduler wakeup noise (tens of real microseconds) stays
// ~1% of the signal. Overridable like the other benches.
double CoordTimeScale() {
  return BenchTimeScale(0.05);  // 1 virtual second = 50 real ms
}

SmrConfig MakeConfig(bool seed_mode) {
  // The CoC deployment's geometry: four European computing clouds, ~30 ms
  // client links, ~10 ms inter-replica links (see Deployment::Create).
  SmrConfig config;
  config.f = 1;
  config.byzantine = true;
  for (unsigned i = 0; i < config.replica_count(); ++i) {
    config.client_links.push_back(CoordinationLinkLatency(i));
  }
  config.replica_link =
      LatencyModel::WideArea(FromMillis(9), FromMillis(5), 16.0);
  config.client_timeout = 30 * kSecond;
  // Failure detector: must exceed the worst-case queueing delay of the
  // lock-step seed configuration (32 clients x ~25 ms per instance).
  config.order_timeout = 5 * kSecond;
  if (seed_mode) {
    config.enable_batching = false;
    config.enable_read_fast_path = false;
    config.max_inflight_instances = 1;
  }
  return config;
}

std::string ClientName(int index) {
  return "bench-client-" + std::to_string(index);
}

// Closed-loop fan-out: `clients` threads each run `per_client(c)`.
void RunClients(int clients, const std::function<void(int)>& per_client) {
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] { per_client(c); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
}

struct Throughput {
  double ops_per_s = 0;
  double mean_latency_ms = 0;
  SmrCounters counters;

  double batch_factor() const {
    return counters.proposed_instances > 0
               ? static_cast<double>(counters.proposed_requests) /
                     counters.proposed_instances
               : 0;
  }
};

// Workload 1: totally-ordered writes, distinct keys per client.
Throughput RunOrderedConfig(Environment* env, const SmrConfig& config,
                            int clients, int ops) {
  ReplicatedCoordination coord(env, config);
  std::vector<double> latencies_ms(clients, 0);
  VirtualTime t0 = env->Now();
  RunClients(clients, [&](int c) {
    const std::string client = ClientName(c);
    for (int i = 0; i < ops; ++i) {
      std::string key = "k" + std::to_string(c) + ":" + std::to_string(i);
      VirtualTime start = env->Now();
      (void)coord.Write(client, key, ToBytes("v"));
      latencies_ms[c] += ToSeconds(env->Now() - start) * 1e3;
    }
  });
  double seconds = ToSeconds(env->Now() - t0);
  Throughput out;
  out.ops_per_s = seconds > 0 ? clients * ops / seconds : 0;
  double total_ms = 0;
  for (double ms : latencies_ms) {
    total_ms += ms;
  }
  out.mean_latency_ms = clients * ops > 0 ? total_ms / (clients * ops) : 0;
  out.counters = coord.cluster().counters();
  return out;
}

Throughput RunOrdered(Environment* env, bool seed_mode, int clients, int ops) {
  return RunOrderedConfig(env, MakeConfig(seed_mode), clients, ops);
}

struct ReadLatency {
  double mean_ms = 0;
  double p95_ms = 0;
  SmrCounters counters;
};

// Workload 2: concurrent reads of per-client keys (the getattr-style
// accesses that dominate shared-file metadata traffic).
ReadLatency RunReads(Environment* env, bool seed_mode, int clients, int ops) {
  ReplicatedCoordination coord(env, MakeConfig(seed_mode));
  for (int c = 0; c < clients; ++c) {
    (void)coord.Write(ClientName(c), "r" + std::to_string(c), ToBytes("v"));
  }
  std::vector<std::vector<double>> latencies(clients);
  RunClients(clients, [&](int c) {
    const std::string client = ClientName(c);
    const std::string key = "r" + std::to_string(c);
    latencies[c].reserve(ops);
    for (int i = 0; i < ops; ++i) {
      VirtualTime start = env->Now();
      (void)coord.Read(client, key);
      latencies[c].push_back(ToSeconds(env->Now() - start) * 1e3);
    }
  });
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  ReadLatency out;
  LatencySummary summary = Summarize(std::move(all));
  out.mean_ms = summary.mean;
  out.p95_ms = summary.p95;
  out.counters = coord.cluster().counters();
  return out;
}

// Workload 3: the Table-3 metadata shape — per iteration one create, a
// getattr burst of three reads, a lock/unlock pair and one publish.
Throughput RunMixed(Environment* env, bool seed_mode, int clients,
                    int iterations) {
  ReplicatedCoordination coord(env, MakeConfig(seed_mode));
  constexpr int kOpsPerIteration = 7;
  VirtualTime t0 = env->Now();
  RunClients(clients, [&](int c) {
    const std::string client = ClientName(c);
    for (int i = 0; i < iterations; ++i) {
      std::string key = "m" + std::to_string(c) + ":" + std::to_string(i);
      (void)coord.Write(client, key, ToBytes("meta"));
      for (int g = 0; g < 3; ++g) {
        (void)coord.Read(client, key);
      }
      auto lock = coord.TryLock(client, "l" + key, kSecond);
      if (lock.ok()) {
        (void)coord.Unlock(client, "l" + key, lock->token);
      }
      (void)coord.Write(client, key, ToBytes("meta2"));
    }
  });
  double seconds = ToSeconds(env->Now() - t0);
  Throughput out;
  out.ops_per_s =
      seconds > 0 ? clients * iterations * kOpsPerIteration / seconds : 0;
  out.counters = coord.cluster().counters();
  return out;
}

struct Rejoin {
  double rejoin_ms = 0;     // restart -> frontier + digest convergence
  bool converged = false;
  SmrCounters counters;
};

// Workload 4: recovery. A replica is crashed while the quorum advances far
// beyond the executed-batch window, then restarted; before snapshot state
// transfer it wedged at its gap forever. The scenario uses a scaled-down
// window/checkpoint geometry (64/16 instead of 256/64) so the lag phase
// stays cheap, and a tighter failure detector so the wedge is noticed at a
// recovery-relevant cadence; rejoin latency is dominated by the detector
// timeout plus one snapshot round, so it is reported against that config.
Rejoin RunRecovery(Environment* env, bool quick) {
  SmrConfig config = MakeConfig(false);
  config.executed_batch_window = 64;
  config.checkpoint_interval = 16;
  config.order_timeout = 1500 * kMillisecond;
  ReplicatedCoordination coord(env, config);
  auto& cluster = coord.cluster();
  cluster.CrashReplica(3);
  // One closed-loop client: each write rides its own instance, so the
  // frontier advances past the 64-seq window.
  const int lag_ops = quick ? 80 : 100;
  for (int i = 0; i < lag_ops; ++i) {
    (void)coord.Write(ClientName(0), "lag:" + std::to_string(i),
                      ToBytes("v"));
  }
  const uint64_t target = cluster.exec_frontier(0);
  cluster.RestartReplica(3);
  VirtualTime t0 = env->Now();
  // Light background traffic: the restarted replica learns the live
  // frontier from it (evidence for the wedge detector).
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    int i = 0;
    while (!stop.load()) {
      (void)coord.Write(ClientName(1), "post:" + std::to_string(i++),
                        ToBytes("v"));
    }
  });
  Rejoin out;
  const VirtualTime deadline = env->Now() + 120 * kSecond;
  while (env->Now() < deadline && cluster.exec_frontier(3) < target) {
    env->Sleep(100 * kMillisecond);
  }
  out.rejoin_ms = ToSeconds(env->Now() - t0) * 1e3;
  stop.store(true);
  traffic.join();
  // Validation after quiescence: the rejoined replica's state digest must
  // match the quorum's.
  for (int spin = 0; spin < 100 && !out.converged; ++spin) {
    out.converged = cluster.exec_frontier(3) >= target &&
                    cluster.state_digest(3) == cluster.state_digest(1);
    if (!out.converged) {
      env->Sleep(100 * kMillisecond);
    }
  }
  out.counters = cluster.counters();
  return out;
}

// Workload 6: the partition sweep. Offered load is fixed — 32 clients, each
// keeping 4 concurrent streams in flight, every stream looping writes with
// a getattr-style read every other iteration and a lock/unlock pair every
// fourth — while the number of partitions sweeps 1/2/4/8. Each partition
// runs a deliberately capacity-bound ordering pipeline (one instance in
// flight, 2 requests per batch ~= 100 ordered ops/s at the CoC
// inter-replica RTT): real BFT deployments bound both the protocol window
// and the per-instance crypto budget, and the default deep pipeline never
// saturates at this client count, which would leave every point
// latency-bound and measure the client loop instead of the sharding. The
// sweep runs on its own coarser-scaled environment (8x the bench scale):
// 128 client threads plus up to 32 replica threads overwhelm a small host
// at the default scale, and host scheduling must not leak into the
// virtual-time results (the numbers must be stable across SCFS_TIME_SCALE).
struct PartitionSweepPoint {
  unsigned partitions = 1;
  double agg_ordered_ops_s = 0;
  std::vector<double> per_partition_ops_s;
  SmrCounters counters;
};

PartitionSweepPoint RunPartitionPoint(Environment* env, unsigned partitions,
                                      bool quick) {
  constexpr int kSweepClients = 32;
  constexpr int kStreamsPerClient = 4;
  const int ops = quick ? 4 : 6;

  PartitionedCoordinationConfig pconfig;
  pconfig.partitions = partitions;
  pconfig.smr = MakeConfig(false);
  pconfig.smr.max_inflight_instances = 1;
  pconfig.smr.max_batch = 2;
  PartitionedCoordination coord(env, pconfig);

  VirtualTime t0 = env->Now();
  RunClients(kSweepClients * kStreamsPerClient, [&](int s) {
    const std::string client = ClientName(s / kStreamsPerClient);
    const std::string stream = std::to_string(s);
    for (int i = 0; i < ops; ++i) {
      std::string key = "pw:" + stream + ":" + std::to_string(i);
      (void)coord.Write(client, key, ToBytes("v"));
      if (i % 2 == 1) {
        (void)coord.Read(client, key);  // fast path, not ordered
      }
      if (i % 4 == 3) {
        auto lock = coord.TryLock(client, "pl:" + stream, 30 * kSecond);
        if (lock.ok()) {
          (void)coord.Unlock(client, "pl:" + stream, lock->token);
        }
      }
    }
  });
  double seconds = ToSeconds(env->Now() - t0);
  PartitionSweepPoint out;
  out.partitions = partitions;
  double total_ordered = 0;
  for (unsigned p = 0; p < partitions; ++p) {
    double ordered = static_cast<double>(
        coord.cluster(p).counters().ordered_commands);
    total_ordered += ordered;
    out.per_partition_ops_s.push_back(seconds > 0 ? ordered / seconds : 0);
  }
  out.agg_ordered_ops_s = seconds > 0 ? total_ordered / seconds : 0;
  out.counters = coord.counters();
  return out;
}

// Workload 7: the lease plane. Per client: populate a private directory
// prefix, acquire a read lease over it (one ordered command returning every
// covered entry), then run a getattr burst that a lease-holding client
// serves locally — zero coordination messages — and finally one write into
// the leased prefix, whose ordered reply must piggyback the revocation
// (revocations ride the existing reply plumbing; no extra protocol round).
// Reports the grant's amortization factor: reads served per ordered grant.
struct LeaseBench {
  double grant_mean_ms = 0;      // AcquireLease round trip
  double entries_per_grant = 0;  // fileset entries returned by one grant
  double revoked_per_write = 0;  // revocations piggybacked on the mutation
  uint64_t ordered_commands = 0;
};

LeaseBench RunLeaseBench(Environment* env, int clients, int files) {
  ReplicatedCoordination coord(env, MakeConfig(false));
  RunClients(clients, [&](int c) {
    const std::string client = ClientName(c);
    for (int i = 0; i < files; ++i) {
      (void)coord.Write(client,
                        "m:/lease" + std::to_string(c) + "/f" +
                            std::to_string(i) + "/",
                        ToBytes("meta"));
    }
  });
  const uint64_t ordered_before = coord.cluster().counters().ordered_commands;
  std::vector<double> grant_ms(clients, 0);
  std::vector<double> entries(clients, 0);
  std::vector<double> revoked(clients, 0);
  RunClients(clients, [&](int c) {
    const std::string client = ClientName(c);
    const std::string prefix = "m:/lease" + std::to_string(c) + "/";
    VirtualTime start = env->Now();
    auto grant = coord.AcquireLease(client, client, prefix, 30 * kSecond);
    grant_ms[c] = ToSeconds(env->Now() - start) * 1e3;
    if (grant.ok()) {
      entries[c] = static_cast<double>(grant->entries.size());
    }
    // The getattr burst a leased client absorbs locally: no coord calls.
    CoordCommand write;
    write.op = CoordOp::kWrite;
    write.client = client;
    write.key = prefix + "f0/";
    write.value = ToBytes("meta2");
    auto reply = coord.Submit(write);
    if (reply.ok()) {
      revoked[c] = static_cast<double>(reply->revoked.size());
    }
  });
  LeaseBench out;
  for (int c = 0; c < clients; ++c) {
    out.grant_mean_ms += grant_ms[c] / clients;
    out.entries_per_grant += entries[c] / clients;
    out.revoked_per_write += revoked[c] / clients;
  }
  out.ordered_commands =
      coord.cluster().counters().ordered_commands - ordered_before;
  return out;
}

// Workload 8: the elastic split demo. Three equal-traffic key buckets are
// pre-filtered by routing-hash quarter: buckets A ([0, 2^62)) and B
// ([2^62, 2^63)) both land on partition 0 of the initial 2-active uniform
// map, bucket C ([2^63, 2^64)) on partition 1 — a skewed (hot-partition)
// workload with 2/3 of the offered load on one capacity-bound pipeline,
// the coordination-plane shape of the scenario engine's Zipfian skew demo.
// The split controller watches windowed EWMAs and moves [2^62, 2^63) (all
// of bucket B) onto the spare, after which the three buckets map to three
// partitions 1:1:1. Measured: aggregate ops/s before the split, after it,
// and on a statically balanced 3-partition deployment running the same
// offered pattern (keys pre-bucketed per static partition) — post-split
// must recover >= 80% of static-3. After quiescing, a scatter-gather scan
// audits the key population: every written key present exactly once.
struct SplitDemo {
  bool fired = false;
  double pre_agg = 0;     // aggregate ops/s while partition 0 is hot
  double post_agg = 0;    // aggregate ops/s after the automatic split
  double static_agg = 0;  // statically balanced 3-partition baseline
  double recovery_ratio = 0;  // post_agg / static_agg
  double split_duration_ms = 0;
  uint64_t route_epoch_retries = 0;
  uint64_t migration_stalls = 0;
  uint64_t keys_migrated = 0;
  uint64_t lost_keys = 0;
  uint64_t dup_keys = 0;
  uint64_t write_errors = 0;
  // One row per 1-virtual-second tick: per-partition ops/s and the route
  // epoch at the end of the tick (the per-partition timeline).
  struct TimelineRow {
    double t_s = 0;
    uint64_t epoch = 0;
    std::vector<double> per_partition;
  };
  std::vector<TimelineRow> timeline;
};

// `count` keys under `prefix` whose routing hash falls in hash-space
// quarter `quarter` (top two hash bits). Deterministic: rejection-samples
// the natural numbers.
std::vector<std::string> KeysInHashQuarter(const std::string& prefix,
                                           unsigned quarter, size_t count) {
  std::vector<std::string> keys;
  for (uint64_t i = 0; keys.size() < count; ++i) {
    std::string key = prefix + std::to_string(i);
    if ((PartitionRoutingHash(key) >> 62) == quarter) {
      keys.push_back(key);
    }
  }
  return keys;
}

// Tuple ACLs are owner-only by default; the demo's keys are shared by the
// whole fleet, so one seeder creates each key and world-opens it (the
// migration carries ACLs with the entry, so grants survive the split).
void SeedSplitKeys(PartitionedCoordination* coord,
                   const std::vector<std::vector<std::string>>& pools) {
  const std::string seeder = ClientName(0);
  for (const auto& pool : pools) {
    for (const auto& key : pool) {
      (void)coord->Write(seeder, key, ToBytes("v"));
      (void)coord->GrantEntryAccess(seeder, key, "*", true, true);
    }
  }
}

// Closed-loop writers cycling the key pools round-robin (pool = op mod
// pools, so each pool receives exactly 1/3 of the offered load) with an
// occasional fast read, until *stop. Write failures are counted, never
// retried (the router's transparent retry is below this).
std::vector<std::thread> StartSplitClients(
    PartitionedCoordination* coord,
    const std::vector<std::vector<std::string>>* pools, int clients,
    std::atomic<bool>* stop, std::atomic<uint64_t>* write_errors) {
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([=] {
      const std::string client = ClientName(c);
      uint64_t n = c;  // staggered start: the fleet covers every key
      while (!stop->load(std::memory_order_relaxed)) {
        const auto& pool = (*pools)[n % pools->size()];
        const std::string& key = pool[(n / pools->size()) % pool.size()];
        if (!coord->Write(client, key, ToBytes("v")).ok()) {
          write_errors->fetch_add(1, std::memory_order_relaxed);
        }
        if (n % 4 == 3) {
          (void)coord->Read(client, key);  // fast path, not ordered
        }
        ++n;
      }
    });
  }
  return threads;
}

double AggregateRate(const PartitionLoadSnapshot& before,
                     const PartitionLoadSnapshot& after) {
  double total = 0;
  for (double rate : PartitionOpsPerSecond(before, after)) {
    total += rate;
  }
  return total;
}

SplitDemo RunSplitDemo(Environment* env, bool quick) {
  const int kDemoClients = 24;
  const size_t kKeysPerPool = 12;
  const int warmup_ticks = 1;
  const int measure_ticks = quick ? 2 : 3;
  const int max_wait_ticks = quick ? 16 : 24;
  SplitDemo out;

  // --- Elastic run: 2 active partitions + 1 spare, controller on. The
  // min-total gate sits well above the single-threaded seeding rate
  // (~15 ops/s) and well below the fleet's (~200+), so the controller
  // ignores the seeding phase and fires a few EWMA windows into the
  // fleet's skewed load.
  PartitionedCoordinationConfig pconfig;
  pconfig.partitions = 2;
  pconfig.spare_partitions = 1;
  pconfig.smr = MakeConfig(false);
  pconfig.smr.max_inflight_instances = 1;
  pconfig.smr.max_batch = 2;
  pconfig.auto_split = true;
  pconfig.split_window = 3 * kSecond;
  pconfig.split_hot_share = 0.55;  // offered hot share is 2/3
  pconfig.split_min_total_ops_s = 80.0;
  PartitionedCoordination coord(env, pconfig);

  const std::vector<std::vector<std::string>> pools = {
      KeysInHashQuarter("bkt:a", 0, kKeysPerPool),
      KeysInHashQuarter("bkt:b", 1, kKeysPerPool),
      KeysInHashQuarter("bkt:c", 2, kKeysPerPool),
  };

  SeedSplitKeys(&coord, pools);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> write_errors{0};
  std::vector<std::thread> threads =
      StartSplitClients(&coord, &pools, kDemoClients, &stop, &write_errors);

  std::vector<PartitionLoadSnapshot> ticks;
  ticks.push_back(coord.LoadSnapshot());
  const VirtualTime t0 = env->Now();
  auto tick = [&] {
    env->Sleep(kSecond);
    ticks.push_back(coord.LoadSnapshot());
    SplitDemo::TimelineRow row;
    row.t_s = ToSeconds(env->Now() - t0);
    row.epoch = coord.route_epoch();
    row.per_partition =
        PartitionOpsPerSecond(ticks[ticks.size() - 2], ticks.back());
    out.timeline.push_back(row);
  };

  // Tick until the controller's split lands (EWMA windows + the migration
  // itself), recording the timeline as it goes.
  const uint64_t initial_epoch = coord.route_epoch();
  int waited = 0;
  while (coord.elastic_counters().splits == 0 && waited < max_wait_ticks) {
    tick();
    ++waited;
  }
  out.fired = coord.elastic_counters().splits >= 1;
  tick();  // settle: drain the stalled writes released at commit
  tick();

  // Pre-split window, in hindsight: the full ticks that ended at the
  // initial epoch. The last of them typically straddles the migration's
  // write freeze, so it is excluded (timeline row i covers snapshots
  // [i, i+1]; row.epoch is read at the row's end).
  size_t last_initial_row = 0;
  for (size_t i = 0; i < out.timeline.size(); ++i) {
    if (out.timeline[i].epoch == initial_epoch) {
      last_initial_row = i;
    }
  }
  const size_t pre_end = std::max<size_t>(1, last_initial_row);
  out.pre_agg = AggregateRate(ticks[0], ticks[pre_end]);

  const size_t post_start = ticks.size() - 1;
  for (int i = 0; i < measure_ticks; ++i) {
    tick();
  }
  out.post_agg = AggregateRate(ticks[post_start], ticks.back());

  stop.store(true);
  for (auto& thread : threads) {
    thread.join();
  }
  env->Sleep(kSecond);  // quiesce before the audit

  const ElasticCounters elastic = coord.elastic_counters();
  out.split_duration_ms = elastic.last_migration_us / 1e3;
  out.route_epoch_retries = elastic.route_epoch_retries;
  out.migration_stalls = elastic.migration_stalls;
  out.keys_migrated = elastic.keys_migrated;
  out.write_errors = write_errors.load();

  // Audit: a scatter-gather scan over the whole key population must return
  // every key exactly once (owner-wins dedupe), no matter where the split
  // left the entries.
  auto scanned = coord.ReadPrefix(ClientName(0), "bkt:");
  std::map<std::string, int> seen;
  if (scanned.ok()) {
    for (const auto& entry : *scanned) {
      ++seen[entry.key];
    }
  }
  for (const auto& pool : pools) {
    for (const auto& key : pool) {
      auto it = seen.find(key);
      if (it == seen.end()) {
        ++out.lost_keys;
      } else if (it->second > 1) {
        out.dup_keys += it->second - 1;
      }
    }
  }

  // --- Static baseline: 3 active partitions, same client fleet and pool
  // shape, keys pre-bucketed so each pool lands wholly on its own
  // partition — the statically balanced deployment the elastic plane is
  // measured against.
  PartitionedCoordinationConfig sconfig;
  sconfig.partitions = 3;
  sconfig.smr = pconfig.smr;
  PartitionedCoordination static_coord(env, sconfig);
  std::vector<std::vector<std::string>> static_pools(3);
  for (unsigned p = 0; p < 3; ++p) {
    for (uint64_t i = 0; static_pools[p].size() < kKeysPerPool; ++i) {
      std::string key = "sbkt:" + std::to_string(p) + ":" + std::to_string(i);
      if (static_coord.PartitionOf(key) == p) {
        static_pools[p].push_back(key);
      }
    }
  }
  SeedSplitKeys(&static_coord, static_pools);
  std::atomic<bool> static_stop{false};
  std::atomic<uint64_t> static_errors{0};
  std::vector<std::thread> static_threads = StartSplitClients(
      &static_coord, &static_pools, kDemoClients, &static_stop,
      &static_errors);
  env->Sleep(warmup_ticks * kSecond);
  PartitionLoadSnapshot sbefore = static_coord.LoadSnapshot();
  env->Sleep(measure_ticks * kSecond);
  PartitionLoadSnapshot safter = static_coord.LoadSnapshot();
  static_stop.store(true);
  for (auto& thread : static_threads) {
    thread.join();
  }
  out.static_agg = AggregateRate(sbefore, safter);
  out.recovery_ratio = out.static_agg > 0 ? out.post_agg / out.static_agg : 0;
  return out;
}

void RunAll(const Options& options) {
  auto env = Environment::Scaled(CoordTimeScale());
  const int kClients = 32;
  const int ordered_ops = options.quick ? 4 : 16;
  const int read_ops = options.quick ? 4 : 12;
  const int mixed_iterations = options.quick ? 2 : 4;

  BenchJsonWriter json;
  std::vector<int> widths = {30, 14, 14, 10};

  PrintHeader("Coordination plane: ordered throughput (32 clients)");
  Throughput ordered_seed = RunOrdered(env.get(), true, kClients, ordered_ops);
  Throughput ordered_fast =
      RunOrdered(env.get(), false, kClients, ordered_ops);
  double ordered_speedup = ordered_seed.ops_per_s > 0
                               ? ordered_fast.ops_per_s / ordered_seed.ops_per_s
                               : 0;
  PrintRow({"workload", "seed", "batched", "speedup"}, widths);
  PrintRow({"ordered writes (ops/s)",
            std::to_string(static_cast<int>(ordered_seed.ops_per_s)),
            std::to_string(static_cast<int>(ordered_fast.ops_per_s)),
            FormatSeconds(ordered_speedup) + "x"},
           widths);
  json.Add("coord_ordered_seed", ordered_seed.ops_per_s, "ops/s");
  json.Add("coord_ordered_batched", ordered_fast.ops_per_s, "ops/s");
  json.Add("coord_ordered_speedup", ordered_speedup, "x");
  double batch_avg =
      ordered_fast.counters.proposed_instances > 0
          ? static_cast<double>(ordered_fast.counters.proposed_requests) /
                ordered_fast.counters.proposed_instances
          : 0;
  json.Add("coord_ordered_avg_batch", batch_avg, "reqs/instance");

  PrintHeader("Coordination plane: read latency (32 clients)");
  ReadLatency read_seed = RunReads(env.get(), true, kClients, read_ops);
  ReadLatency read_fast = RunReads(env.get(), false, kClients, read_ops);
  double read_ratio =
      read_fast.mean_ms > 0 ? read_seed.mean_ms / read_fast.mean_ms : 0;
  PrintRow({"read mean (ms)", FormatSeconds(read_seed.mean_ms),
            FormatSeconds(read_fast.mean_ms), FormatSeconds(read_ratio) + "x"},
           widths);
  PrintRow({"read p95 (ms)", FormatSeconds(read_seed.p95_ms),
            FormatSeconds(read_fast.p95_ms), ""},
           widths);
  json.Add("coord_read_seed_mean", read_seed.mean_ms, "ms");
  json.Add("coord_read_fast_mean", read_fast.mean_ms, "ms");
  json.Add("coord_read_latency_ratio", read_ratio, "x");
  json.Add("coord_read_fast_path_reads",
           static_cast<double>(read_fast.counters.fast_path_reads), "ops");
  json.Add("coord_read_fast_path_fallbacks",
           static_cast<double>(read_fast.counters.fast_path_fallbacks), "ops");

  PrintHeader("Coordination plane: mixed Table-3 metadata workload");
  Throughput mixed_seed =
      RunMixed(env.get(), true, kClients, mixed_iterations);
  Throughput mixed_fast =
      RunMixed(env.get(), false, kClients, mixed_iterations);
  double mixed_speedup =
      mixed_seed.ops_per_s > 0 ? mixed_fast.ops_per_s / mixed_seed.ops_per_s
                               : 0;
  PrintRow({"mixed metadata (ops/s)",
            std::to_string(static_cast<int>(mixed_seed.ops_per_s)),
            std::to_string(static_cast<int>(mixed_fast.ops_per_s)),
            FormatSeconds(mixed_speedup) + "x"},
           widths);
  json.Add("coord_mixed_seed", mixed_seed.ops_per_s, "ops/s");
  json.Add("coord_mixed_batched", mixed_fast.ops_per_s, "ops/s");
  json.Add("coord_mixed_speedup", mixed_speedup, "x");

  PrintHeader("Coordination plane: recovery (rejoin via snapshot)");
  Rejoin rejoin = RunRecovery(env.get(), options.quick);
  PrintRow({"metric", "value", "", ""}, widths);
  PrintRow({"rejoin latency (ms)", FormatSeconds(rejoin.rejoin_ms),
            rejoin.converged ? "converged" : "NOT CONVERGED", ""},
           widths);
  PrintRow({"snapshots installed",
            std::to_string(rejoin.counters.snapshots_installed), "", ""},
           widths);
  PrintRow({"checkpoints taken",
            std::to_string(rejoin.counters.checkpoints_taken), "", ""},
           widths);
  json.Add("coord_rejoin_ms", rejoin.rejoin_ms, "ms");
  json.Add("coord_rejoin_converged", rejoin.converged ? 1 : 0, "bool");
  json.Add("coord_rejoin_snapshot_installs",
           static_cast<double>(rejoin.counters.snapshots_installed), "count");

  // Batch accumulation delay sweep (ROADMAP question): hold partial batches
  // for 0 / 0.5 / 1 replica one-way delays and report batch factor vs
  // added write latency under the 32-client ordered workload.
  PrintHeader("Coordination plane: batch accumulation delay sweep");
  const VirtualDuration one_way = FromMillis(9);  // replica link mean
  const struct {
    const char* name;
    const char* key;
    VirtualDuration delay;
  } sweep[] = {
      {"delay 0 (time-less)", "coord_accum0", 0},
      {"delay 0.5 one-way", "coord_accum_half", one_way / 2},
      {"delay 1 one-way", "coord_accum_one", one_way},
  };
  PrintRow({"config", "batch factor", "ops/s", "mean ms"}, widths);
  for (const auto& point : sweep) {
    SmrConfig config = MakeConfig(false);
    config.batch_accumulation_delay = point.delay;
    Throughput result =
        RunOrderedConfig(env.get(), config, kClients, ordered_ops);
    PrintRow({point.name, FormatSeconds(result.batch_factor()),
              std::to_string(static_cast<int>(result.ops_per_s)),
              FormatSeconds(result.mean_latency_ms)},
             widths);
    json.Add(std::string(point.key) + "_batch", result.batch_factor(),
             "reqs/instance");
    json.Add(std::string(point.key) + "_ops", result.ops_per_s, "ops/s");
    json.Add(std::string(point.key) + "_latency_ms", result.mean_latency_ms,
             "ms");
  }

  PrintHeader("Coordination plane: lease grant/serve/revoke");
  LeaseBench lease =
      RunLeaseBench(env.get(), kClients, options.quick ? 4 : 16);
  PrintRow({"metric", "value", "", ""}, widths);
  PrintRow({"grant mean (ms)", FormatSeconds(lease.grant_mean_ms), "", ""},
           widths);
  PrintRow({"entries per grant", FormatSeconds(lease.entries_per_grant), "",
            ""},
           widths);
  PrintRow({"revoked per write", FormatSeconds(lease.revoked_per_write), "",
            ""},
           widths);
  json.Add("coord_lease_grant_ms", lease.grant_mean_ms, "ms");
  json.Add("coord_lease_entries_per_grant", lease.entries_per_grant,
           "entries");
  json.Add("coord_lease_revoked_per_write", lease.revoked_per_write,
           "leases");
  json.Add("coord_lease_ordered_commands",
           static_cast<double>(lease.ordered_commands), "cmds");

  // Partition sweep: aggregate ordered throughput vs partition count at
  // fixed offered load (per-partition pipeline capacity-bound; see
  // RunPartitionPoint).
  PrintHeader("Coordination plane: partition sweep (32 clients x 4 streams)");
  PrintRow({"partitions", "agg ordered/s", "min part/s", "max part/s"},
           widths);
  auto sweep_env = Environment::Scaled(CoordTimeScale() * 8);
  double part1_agg = 0;
  double part4_agg = 0;
  for (unsigned n : {1u, 2u, 4u, 8u}) {
    PartitionSweepPoint point =
        RunPartitionPoint(sweep_env.get(), n, options.quick);
    double min_part = point.per_partition_ops_s.empty()
                          ? 0
                          : *std::min_element(point.per_partition_ops_s.begin(),
                                              point.per_partition_ops_s.end());
    double max_part = point.per_partition_ops_s.empty()
                          ? 0
                          : *std::max_element(point.per_partition_ops_s.begin(),
                                              point.per_partition_ops_s.end());
    PrintRow({std::to_string(n),
              std::to_string(static_cast<int>(point.agg_ordered_ops_s)),
              std::to_string(static_cast<int>(min_part)),
              std::to_string(static_cast<int>(max_part))},
             widths);
    const std::string base = "coord_part" + std::to_string(n);
    json.Add(base + "_ordered_agg", point.agg_ordered_ops_s, "ops/s");
    for (unsigned p = 0; p < point.per_partition_ops_s.size(); ++p) {
      json.Add(base + "_p" + std::to_string(p) + "_ordered",
               point.per_partition_ops_s[p], "ops/s");
    }
    if (n == 1) {
      part1_agg = point.agg_ordered_ops_s;
    } else if (n == 4) {
      part4_agg = point.agg_ordered_ops_s;
    }
  }
  double part_speedup = part1_agg > 0 ? part4_agg / part1_agg : 0;
  json.Add("coord_part_speedup_4v1", part_speedup, "x");
  std::printf("\npartition sweep: 4-partition aggregate %.0f ops/s = %.2fx "
              "the 1-partition baseline (target >=3x)\n",
              part4_agg, part_speedup);

  // Elastic split demo (workload 8): runs on the same throttled clock as
  // the partition sweep — the controller's windowed rates need low noise.
  PrintHeader("Coordination plane: elastic split under skew (24 clients)");
  SplitDemo split = RunSplitDemo(sweep_env.get(), options.quick);
  PrintRow({"metric", "value", "", ""}, widths);
  PrintRow({"split fired", split.fired ? "yes" : "NO", "", ""}, widths);
  PrintRow({"pre-split agg (ops/s)",
            std::to_string(static_cast<int>(split.pre_agg)), "", ""},
           widths);
  PrintRow({"post-split agg (ops/s)",
            std::to_string(static_cast<int>(split.post_agg)), "", ""},
           widths);
  PrintRow({"static 3-part agg (ops/s)",
            std::to_string(static_cast<int>(split.static_agg)), "", ""},
           widths);
  PrintRow({"recovery ratio", FormatSeconds(split.recovery_ratio) + "x",
            "(target >=0.8)", ""},
           widths);
  PrintRow({"split duration (ms)", FormatSeconds(split.split_duration_ms),
            "", ""},
           widths);
  PrintRow({"route epoch retries",
            std::to_string(split.route_epoch_retries), "", ""},
           widths);
  PrintRow({"keys migrated", std::to_string(split.keys_migrated), "", ""},
           widths);
  PrintRow({"lost / dup keys",
            std::to_string(split.lost_keys) + " / " +
                std::to_string(split.dup_keys),
            "", ""},
           widths);
  std::printf("\nper-partition ops/s timeline (epoch bumps at the split):\n");
  std::printf("  %8s %7s  %s\n", "t (s)", "epoch", "partitions 0..N");
  for (const auto& row : split.timeline) {
    std::printf("  %8.1f %7llu ", row.t_s,
                static_cast<unsigned long long>(row.epoch));
    for (double rate : row.per_partition) {
      std::printf(" %7.0f", rate);
    }
    std::printf("\n");
  }
  json.Add("coord_split_fired", split.fired ? 1 : 0, "bool");
  json.Add("coord_split_pre_agg", split.pre_agg, "ops/s");
  json.Add("coord_split_post_agg", split.post_agg, "ops/s");
  json.Add("coord_split_static_agg", split.static_agg, "ops/s");
  json.Add("coord_split_recovery_ratio", split.recovery_ratio, "x");
  json.Add("coord_split_duration_ms", split.split_duration_ms, "ms");
  json.Add("coord_split_route_epoch_retries",
           static_cast<double>(split.route_epoch_retries), "count");
  json.Add("coord_split_migration_stalls",
           static_cast<double>(split.migration_stalls), "count");
  json.Add("coord_split_keys_migrated",
           static_cast<double>(split.keys_migrated), "count");
  json.Add("coord_split_lost_keys", static_cast<double>(split.lost_keys),
           "count");
  json.Add("coord_split_dup_keys", static_cast<double>(split.dup_keys),
           "count");
  json.Add("coord_split_write_errors",
           static_cast<double>(split.write_errors), "count");

  std::printf(
      "\nShape check: batching+pipelining must give >=5x ordered throughput\n"
      "at 32 clients, the read fast path >=3x lower read latency; the mixed\n"
      "workload sits in between. Avg batch %.1f reqs/instance; %llu fast\n"
      "reads, %llu fallbacks. The recovery scenario must converge with >=1\n"
      "snapshot install; its rejoin latency is at most one failure-detector\n"
      "timeout plus a snapshot round. The accumulation sweep trades\n"
      "batch factor against mean write latency; the verdict is recorded in\n"
      "ROADMAP.md. The partition sweep must show aggregate ordered\n"
      "throughput scaling with the partition count at fixed offered load\n"
      "(>=3x at 4 partitions; CI fails if 4 partitions regress below 1).\n"
      "The elastic demo must fire exactly the automatic split, recover\n"
      ">=0.8x of the statically balanced 3-partition plane and lose or\n"
      "duplicate zero keys (all gated by tools/check_bench_coord.py).\n",
      batch_avg,
      static_cast<unsigned long long>(read_fast.counters.fast_path_reads),
      static_cast<unsigned long long>(
          read_fast.counters.fast_path_fallbacks));

  json.WriteFile(options.json_path);
}

}  // namespace
}  // namespace scfs

int main(int argc, char** argv) {
  scfs::Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      options.json_path = argv[++i];
    }
  }
  scfs::RunAll(options);
  return 0;
}
