// Coordination-plane throughput: closed-loop multi-client benchmarks over
// the replicated SMR cluster (the consistency anchor of every shared-file
// metadata operation, paper §3.2 / Table 3).
//
// Three workloads, each run twice on the same in-binary cluster code:
//
//   seed      batching + read fast path disabled, one consensus instance at
//             a time (the pre-batching lock-step configuration)
//   batched   leader batching + pipelining + read-only fast path (defaults)
//
//   1. ordered    32 closed-loop clients issuing writes (totally ordered)
//   2. reads      32 closed-loop clients issuing reads of their own keys
//   3. mixed      Table-3-style metadata loop per client: create + getattr
//                 burst (3 reads) + lock/unlock + publish
//
// Elapsed time is virtual (the environment clock), so results measure the
// modelled protocol and queueing delays, not host speed. Emits
// BENCH_coord.json via the shared harness.
//
// Usage: bench_coord_throughput [--quick] [--json PATH]

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/cloud/providers.h"
#include "src/coord/smr.h"

namespace scfs {
namespace {

struct Options {
  bool quick = false;
  std::string json_path = "BENCH_coord.json";
};

// The coordination round trips are tens of modelled milliseconds; run them
// at a scale where scheduler wakeup noise (tens of real microseconds) stays
// ~1% of the signal. Overridable like the other benches.
double CoordTimeScale() {
  const char* scale = std::getenv("SCFS_TIME_SCALE");
  if (scale != nullptr && *scale != '\0') {
    return std::atof(scale);
  }
  return 0.05;  // 1 virtual second = 50 real ms
}

SmrConfig MakeConfig(bool seed_mode) {
  // The CoC deployment's geometry: four European computing clouds, ~30 ms
  // client links, ~10 ms inter-replica links (see Deployment::Create).
  SmrConfig config;
  config.f = 1;
  config.byzantine = true;
  for (unsigned i = 0; i < config.replica_count(); ++i) {
    config.client_links.push_back(CoordinationLinkLatency(i));
  }
  config.replica_link =
      LatencyModel::WideArea(FromMillis(9), FromMillis(5), 16.0);
  config.client_timeout = 30 * kSecond;
  // Failure detector: must exceed the worst-case queueing delay of the
  // lock-step seed configuration (32 clients x ~25 ms per instance).
  config.order_timeout = 5 * kSecond;
  if (seed_mode) {
    config.enable_batching = false;
    config.enable_read_fast_path = false;
    config.max_inflight_instances = 1;
  }
  return config;
}

std::string ClientName(int index) {
  return "bench-client-" + std::to_string(index);
}

// Closed-loop fan-out: `clients` threads each run `per_client(c)`.
void RunClients(int clients, const std::function<void(int)>& per_client) {
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] { per_client(c); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
}

struct Throughput {
  double ops_per_s = 0;
  SmrCounters counters;
};

// Workload 1: totally-ordered writes, distinct keys per client.
Throughput RunOrdered(Environment* env, bool seed_mode, int clients, int ops) {
  ReplicatedCoordination coord(env, MakeConfig(seed_mode));
  VirtualTime t0 = env->Now();
  RunClients(clients, [&](int c) {
    const std::string client = ClientName(c);
    for (int i = 0; i < ops; ++i) {
      std::string key = "k" + std::to_string(c) + ":" + std::to_string(i);
      (void)coord.Write(client, key, ToBytes("v"));
    }
  });
  double seconds = ToSeconds(env->Now() - t0);
  Throughput out;
  out.ops_per_s = seconds > 0 ? clients * ops / seconds : 0;
  out.counters = coord.cluster().counters();
  return out;
}

struct ReadLatency {
  double mean_ms = 0;
  double p95_ms = 0;
  SmrCounters counters;
};

// Workload 2: concurrent reads of per-client keys (the getattr-style
// accesses that dominate shared-file metadata traffic).
ReadLatency RunReads(Environment* env, bool seed_mode, int clients, int ops) {
  ReplicatedCoordination coord(env, MakeConfig(seed_mode));
  for (int c = 0; c < clients; ++c) {
    (void)coord.Write(ClientName(c), "r" + std::to_string(c), ToBytes("v"));
  }
  std::vector<std::vector<double>> latencies(clients);
  RunClients(clients, [&](int c) {
    const std::string client = ClientName(c);
    const std::string key = "r" + std::to_string(c);
    latencies[c].reserve(ops);
    for (int i = 0; i < ops; ++i) {
      VirtualTime start = env->Now();
      (void)coord.Read(client, key);
      latencies[c].push_back(ToSeconds(env->Now() - start) * 1e3);
    }
  });
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  ReadLatency out;
  if (!all.empty()) {
    double sum = 0;
    for (double ms : all) {
      sum += ms;
    }
    out.mean_ms = sum / all.size();
    out.p95_ms = Percentile(all, 95.0);
  }
  out.counters = coord.cluster().counters();
  return out;
}

// Workload 3: the Table-3 metadata shape — per iteration one create, a
// getattr burst of three reads, a lock/unlock pair and one publish.
Throughput RunMixed(Environment* env, bool seed_mode, int clients,
                    int iterations) {
  ReplicatedCoordination coord(env, MakeConfig(seed_mode));
  constexpr int kOpsPerIteration = 7;
  VirtualTime t0 = env->Now();
  RunClients(clients, [&](int c) {
    const std::string client = ClientName(c);
    for (int i = 0; i < iterations; ++i) {
      std::string key = "m" + std::to_string(c) + ":" + std::to_string(i);
      (void)coord.Write(client, key, ToBytes("meta"));
      for (int g = 0; g < 3; ++g) {
        (void)coord.Read(client, key);
      }
      auto lock = coord.TryLock(client, "l" + key, kSecond);
      if (lock.ok()) {
        (void)coord.Unlock(client, "l" + key, lock->token);
      }
      (void)coord.Write(client, key, ToBytes("meta2"));
    }
  });
  double seconds = ToSeconds(env->Now() - t0);
  Throughput out;
  out.ops_per_s =
      seconds > 0 ? clients * iterations * kOpsPerIteration / seconds : 0;
  out.counters = coord.cluster().counters();
  return out;
}

void RunAll(const Options& options) {
  auto env = Environment::Scaled(CoordTimeScale());
  const int kClients = 32;
  const int ordered_ops = options.quick ? 4 : 16;
  const int read_ops = options.quick ? 4 : 12;
  const int mixed_iterations = options.quick ? 2 : 4;

  BenchJsonWriter json;
  std::vector<int> widths = {30, 14, 14, 10};

  PrintHeader("Coordination plane: ordered throughput (32 clients)");
  Throughput ordered_seed = RunOrdered(env.get(), true, kClients, ordered_ops);
  Throughput ordered_fast =
      RunOrdered(env.get(), false, kClients, ordered_ops);
  double ordered_speedup = ordered_seed.ops_per_s > 0
                               ? ordered_fast.ops_per_s / ordered_seed.ops_per_s
                               : 0;
  PrintRow({"workload", "seed", "batched", "speedup"}, widths);
  PrintRow({"ordered writes (ops/s)",
            std::to_string(static_cast<int>(ordered_seed.ops_per_s)),
            std::to_string(static_cast<int>(ordered_fast.ops_per_s)),
            FormatSeconds(ordered_speedup) + "x"},
           widths);
  json.Add("coord_ordered_seed", ordered_seed.ops_per_s, "ops/s");
  json.Add("coord_ordered_batched", ordered_fast.ops_per_s, "ops/s");
  json.Add("coord_ordered_speedup", ordered_speedup, "x");
  double batch_avg =
      ordered_fast.counters.proposed_instances > 0
          ? static_cast<double>(ordered_fast.counters.proposed_requests) /
                ordered_fast.counters.proposed_instances
          : 0;
  json.Add("coord_ordered_avg_batch", batch_avg, "reqs/instance");

  PrintHeader("Coordination plane: read latency (32 clients)");
  ReadLatency read_seed = RunReads(env.get(), true, kClients, read_ops);
  ReadLatency read_fast = RunReads(env.get(), false, kClients, read_ops);
  double read_ratio =
      read_fast.mean_ms > 0 ? read_seed.mean_ms / read_fast.mean_ms : 0;
  PrintRow({"read mean (ms)", FormatSeconds(read_seed.mean_ms),
            FormatSeconds(read_fast.mean_ms), FormatSeconds(read_ratio) + "x"},
           widths);
  PrintRow({"read p95 (ms)", FormatSeconds(read_seed.p95_ms),
            FormatSeconds(read_fast.p95_ms), ""},
           widths);
  json.Add("coord_read_seed_mean", read_seed.mean_ms, "ms");
  json.Add("coord_read_fast_mean", read_fast.mean_ms, "ms");
  json.Add("coord_read_latency_ratio", read_ratio, "x");
  json.Add("coord_read_fast_path_reads",
           static_cast<double>(read_fast.counters.fast_path_reads), "ops");
  json.Add("coord_read_fast_path_fallbacks",
           static_cast<double>(read_fast.counters.fast_path_fallbacks), "ops");

  PrintHeader("Coordination plane: mixed Table-3 metadata workload");
  Throughput mixed_seed =
      RunMixed(env.get(), true, kClients, mixed_iterations);
  Throughput mixed_fast =
      RunMixed(env.get(), false, kClients, mixed_iterations);
  double mixed_speedup =
      mixed_seed.ops_per_s > 0 ? mixed_fast.ops_per_s / mixed_seed.ops_per_s
                               : 0;
  PrintRow({"mixed metadata (ops/s)",
            std::to_string(static_cast<int>(mixed_seed.ops_per_s)),
            std::to_string(static_cast<int>(mixed_fast.ops_per_s)),
            FormatSeconds(mixed_speedup) + "x"},
           widths);
  json.Add("coord_mixed_seed", mixed_seed.ops_per_s, "ops/s");
  json.Add("coord_mixed_batched", mixed_fast.ops_per_s, "ops/s");
  json.Add("coord_mixed_speedup", mixed_speedup, "x");

  std::printf(
      "\nShape check: batching+pipelining must give >=5x ordered throughput\n"
      "at 32 clients, the read fast path >=3x lower read latency; the mixed\n"
      "workload sits in between. Avg batch %.1f reqs/instance; %llu fast\n"
      "reads, %llu fallbacks.\n",
      batch_avg,
      static_cast<unsigned long long>(read_fast.counters.fast_path_reads),
      static_cast<unsigned long long>(
          read_fast.counters.fast_path_fallbacks));

  json.WriteFile(options.json_path);
}

}  // namespace
}  // namespace scfs

int main(int argc, char** argv) {
  scfs::Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      options.json_path = argv[++i];
    }
  }
  scfs::RunAll(options);
  return 0;
}
