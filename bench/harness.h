// Shared benchmark harness: the FUSE-layer simulator, the Filebench-style
// workloads of Table 3, the file-synchronization trace of Figure 7,
// percentile statistics and table printing.

#ifndef SCFS_BENCH_HARNESS_H_
#define SCFS_BENCH_HARNESS_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/coord/smr.h"
#include "src/fsapi/file_system.h"
#include "src/sim/environment.h"

namespace scfs {

// Time scale used by all benchmarks: 1 virtual second = 0.2 real ms, unless
// overridden with the SCFS_TIME_SCALE environment variable. A set but
// non-numeric or non-positive SCFS_TIME_SCALE aborts the benchmark with an
// error instead of being silently ignored — a long sweep must not run at an
// unintended scale because of a typo in the override.
double BenchTimeScale();
// Same, with a benchmark-specific default scale (e.g. the coordination and
// scenario benches run coarser so host scheduling noise stays out of the
// virtual-time results).
double BenchTimeScale(double default_scale);

// ---------------------------------------------------------------------------
// FuseSim: models the FUSE crossing the paper's user-level file systems pay
// on every operation (the reason even memory-cache reads in Table 3 cost tens
// of microseconds). It also issues the getattr FUSE performs on every path
// resolution — the burst the short-term metadata cache absorbs (Figure 10a).
// ---------------------------------------------------------------------------

// Calibrated against Table 3's LocalFS column: 256k random 4KB reads ~11s,
// 256k random 4KB writes ~35s.
struct FuseCosts {
  VirtualDuration per_read = FromMillis(0.02);    // read crossing
  VirtualDuration per_write = FromMillis(0.07);   // write crossing
  VirtualDuration per_meta = FromMillis(0.05);    // open/close/stat crossing
  double read_mb_per_s = 170.0;  // copy-through-FUSE throughput
  double write_mb_per_s = 60.0;
  bool getattr_before_open = true;
  // getattr flurry after open: "opening a file with the vim editor can cause
  // more than five stat calls" (paper §2.5.1) — these are the bursts the
  // short-term metadata cache absorbs (Figure 10a).
  int getattr_burst_after_open = 3;
};

class FuseSim : public FileSystem {
 public:
  FuseSim(Environment* env, FileSystem* inner, FuseCosts costs = {})
      : env_(env), inner_(inner), costs_(costs) {}

  Result<FileHandle> Open(const std::string& path, uint32_t flags) override {
    env_->Sleep(costs_.per_meta);
    if (costs_.getattr_before_open) {
      (void)inner_->Stat(path);  // FUSE lookup/getattr on path resolution
    }
    auto handle = inner_->Open(path, flags);
    if (handle.ok()) {
      for (int i = 0; i < costs_.getattr_burst_after_open; ++i) {
        env_->Sleep(costs_.per_meta);
        (void)inner_->Stat(path);
      }
    }
    return handle;
  }
  Result<Bytes> Read(FileHandle h, uint64_t off, size_t n) override {
    env_->Sleep(costs_.per_read + Transfer(n, costs_.read_mb_per_s));
    return inner_->Read(h, off, n);
  }
  Status Write(FileHandle h, uint64_t off, const Bytes& data) override {
    env_->Sleep(costs_.per_write +
                Transfer(data.size(), costs_.write_mb_per_s));
    return inner_->Write(h, off, data);
  }
  Status Truncate(FileHandle h, uint64_t size) override {
    env_->Sleep(costs_.per_meta);
    return inner_->Truncate(h, size);
  }
  Status Fsync(FileHandle h) override {
    env_->Sleep(costs_.per_meta);
    return inner_->Fsync(h);
  }
  Status Close(FileHandle h) override {
    env_->Sleep(costs_.per_meta);
    return inner_->Close(h);
  }
  Status Mkdir(const std::string& p) override {
    env_->Sleep(costs_.per_meta);
    return inner_->Mkdir(p);
  }
  Status Rmdir(const std::string& p) override {
    env_->Sleep(costs_.per_meta);
    return inner_->Rmdir(p);
  }
  Status Unlink(const std::string& p) override {
    env_->Sleep(costs_.per_meta);
    return inner_->Unlink(p);
  }
  Status Rename(const std::string& a, const std::string& b) override {
    env_->Sleep(costs_.per_meta);
    return inner_->Rename(a, b);
  }
  Result<FileStat> Stat(const std::string& p) override {
    env_->Sleep(costs_.per_meta);
    return inner_->Stat(p);
  }
  Result<std::vector<DirEntry>> ReadDir(const std::string& p) override {
    env_->Sleep(costs_.per_meta);
    return inner_->ReadDir(p);
  }
  Status SetFacl(const std::string& p, const std::string& u, bool r,
                 bool w) override {
    return inner_->SetFacl(p, u, r, w);
  }
  Result<std::vector<AclEntry>> GetFacl(const std::string& p) override {
    return inner_->GetFacl(p);
  }

 private:
  static VirtualDuration Transfer(size_t bytes, double mb_per_s) {
    if (mb_per_s <= 0) {
      return 0;
    }
    return static_cast<VirtualDuration>(
        static_cast<double>(bytes) / (mb_per_s * 1024.0 * 1024.0) * kSecond);
  }

  Environment* env_;
  FileSystem* inner_;
  FuseCosts costs_;
};

// ---------------------------------------------------------------------------
// Filebench-style micro-benchmarks (Table 3). IO-intensive workloads return
// the *charged* virtual time of the calling thread (open/close excluded, as
// in the paper); metadata-intensive workloads return elapsed virtual time.
// ---------------------------------------------------------------------------

struct MicroResult {
  double seconds = 0;
  bool ok = true;
};

// Sequential whole-file read/write of `file_size` bytes in 128 KB chunks.
MicroResult MicroSequentialRead(Environment* env, FileSystem* fs,
                                size_t file_size);
MicroResult MicroSequentialWrite(Environment* env, FileSystem* fs,
                                 size_t file_size);
// `ops` random 4KB reads/writes in a `file_size` file; the result is scaled
// to `report_ops` operations (the paper runs 256k).
MicroResult MicroRandomRead(Environment* env, FileSystem* fs, size_t file_size,
                            int ops, int report_ops);
MicroResult MicroRandomWrite(Environment* env, FileSystem* fs,
                             size_t file_size, int ops, int report_ops);
// Create `count` files of `size` bytes (open/create + write + close each).
MicroResult MicroCreateFiles(Environment* env, FileSystem* fs, int count,
                             size_t size, const std::string& dir = "/cr");
// Copy `count` pre-created files of `size` bytes.
MicroResult MicroCopyFiles(Environment* env, FileSystem* fs, int count,
                           size_t size);

// ---------------------------------------------------------------------------
// File-synchronization benchmark (Figure 7): the OpenOffice open/save/close
// trace. Lock files go to `lock_fs` — pass the same fs, or a LocalFs for the
// "(L)" variants.
// ---------------------------------------------------------------------------

struct FileSyncResult {
  double open_s = 0;
  double save_s = 0;
  double close_s = 0;
  bool ok = true;
};

FileSyncResult RunFileSyncBenchmark(Environment* env, FileSystem* fs,
                                    FileSystem* lock_fs, size_t file_size,
                                    int iterations);

// ---------------------------------------------------------------------------
// Machine-readable results. Benchmarks collect named metrics and write them
// as a JSON array (e.g. BENCH_codec.json) so successive PRs can track the
// perf trajectory without scraping stdout.
// ---------------------------------------------------------------------------

class BenchJsonWriter {
 public:
  void Add(const std::string& name, double value, const std::string& unit);

  std::string ToJson() const;
  // Writes ToJson() to `path`; returns false (and prints a warning) on I/O
  // failure.
  bool WriteFile(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };
  std::vector<Entry> entries_;
};

// ---------------------------------------------------------------------------
// Statistics and printing.
// ---------------------------------------------------------------------------

// Interpolated-rank percentile (linear interpolation between closest ranks,
// the numpy default): p in [0, 100]. Returns 0 on an empty sample — callers
// printing summary tables treat "no data" as zero rather than poisoning the
// output with NaN.
double Percentile(std::vector<double> values, double p);

// One-sort summary of a latency sample: mean plus the common percentiles.
// The single shared implementation for the closed-loop benches — the
// scenario engine's fixed-memory LatencyRecorder (bench/scenario) is the
// tool for open-loop sample counts.
struct LatencySummary {
  size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};
LatencySummary Summarize(std::vector<double> values);

// One-line coordination-plane counter report (ordered commands, instances,
// batch factor, fast-path reads, fallbacks), shared by the benches that
// drive the replicated coordination service.
void PrintCoordCounters(const std::string& label, const SmrCounters& counters);

// Folds a deployment's coordination counters into `into` (no-op for
// backends without a replicated coordination service).
class Deployment;
void AccumulateCoordCounters(Deployment* deployment, SmrCounters* into);

void PrintHeader(const std::string& title);
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);
std::string FormatSeconds(double seconds);

}  // namespace scfs

#endif  // SCFS_BENCH_HARNESS_H_
