// Figure 9 reproduction: file sharing latency — the time between client A
// closing a file written into a shared folder and client B having it — for
// SCFS-{CoC,AWS}-{B,NB} and a Dropbox-style synchronization service, at
// 256 KB / 1 MB / 4 MB / 16 MB (50th and 90th percentiles).

#include <map>

#include "bench/harness.h"
#include "src/baselines/dropbox_sim.h"
#include "src/crypto/sha1.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

constexpr int kTrials = 8;
const size_t kSizes[] = {256 * 1024, 1024 * 1024, 4 * 1024 * 1024,
                         16 * 1024 * 1024};

// Writer A writes + closes into a shared folder; the latency until reader B
// has the file is composed from modelled (charged) time:
//   blocking      the upload finished before close returned, so the latency
//                 is B's fetch (metadata read + download);
//   non-blocking  close returned immediately; the latency is the in-flight
//                 background upload (+ metadata update + unlock) plus B's
//                 fetch once it is published.
std::vector<double> MeasureScfs(Environment* env, ScfsBackendKind backend,
                                ScfsMode mode, size_t size) {
  DeploymentOptions options;
  options.backend = backend;
  auto deployment = Deployment::Create(env, options);
  ScfsOptions writer_options;
  writer_options.mode = mode;
  auto writer = deployment->Mount("alice", writer_options);
  ScfsOptions reader_options;
  reader_options.mode = ScfsMode::kBlocking;
  // B checks for fresh metadata on every poll.
  reader_options.metadata_cache_ttl = 0;
  auto reader = deployment->Mount("alice", reader_options);
  if (!writer.ok() || !reader.ok()) {
    return {};
  }

  std::vector<double> latencies;
  Rng rng(static_cast<uint64_t>(size) * 31 + (mode == ScfsMode::kBlocking));
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::string path = "/shared-" + std::to_string(size) + "-" +
                             std::to_string(trial);
    Bytes data = rng.RandomBytes(size);  // random: defeats deduplication
    VirtualDuration upload = 0;
    if (mode == ScfsMode::kNonBlocking) {
      VirtualDuration charged0 = (*writer)->uploader().total_charged();
      if (!(*writer)->WriteFile(path, data).ok()) {
        continue;
      }
      (*writer)->DrainBackground();
      upload = (*writer)->uploader().total_charged() - charged0;
    } else {
      if (!(*writer)->WriteFile(path, data).ok()) {
        continue;
      }
    }
    // B detects and fetches the file.
    Environment::ResetThreadCharged();
    for (;;) {
      auto read = (*reader)->ReadFile(path);
      if (read.ok() && *read == data) {
        break;
      }
      env->Sleep(100 * kMillisecond);  // B's retry cadence
    }
    latencies.push_back(
        ToSeconds(upload + Environment::ThreadCharged()));
  }
  (*writer)->DrainBackground();
  (void)(*writer)->Unmount();
  (void)(*reader)->Unmount();
  return latencies;
}

std::vector<double> MeasureDropbox(Environment* env, size_t size) {
  DropboxSim dropbox(env, {}, static_cast<uint64_t>(size));
  std::vector<double> latencies;
  for (int trial = 0; trial < kTrials; ++trial) {
    Environment::ResetThreadCharged();
    (void)dropbox.ShareFile(size);
    latencies.push_back(ToSeconds(Environment::ThreadCharged()));
  }
  return latencies;
}

void Run() {
  auto env = Environment::Scaled(BenchTimeScale());

  struct System {
    std::string name;
    std::function<std::vector<double>(size_t)> measure;
  };
  std::vector<System> systems = {
      {"CoC-B",
       [&](size_t s) {
         return MeasureScfs(env.get(), ScfsBackendKind::kCoc,
                            ScfsMode::kBlocking, s);
       }},
      {"CoC-NB",
       [&](size_t s) {
         return MeasureScfs(env.get(), ScfsBackendKind::kCoc,
                            ScfsMode::kNonBlocking, s);
       }},
      {"AWS-B",
       [&](size_t s) {
         return MeasureScfs(env.get(), ScfsBackendKind::kAws,
                            ScfsMode::kBlocking, s);
       }},
      {"AWS-NB",
       [&](size_t s) {
         return MeasureScfs(env.get(), ScfsBackendKind::kAws,
                            ScfsMode::kNonBlocking, s);
       }},
      {"Dropbox",
       [&](size_t s) { return MeasureDropbox(env.get(), s); }},
  };

  PrintHeader("Figure 9: sharing latency, 50th/90th percentile (virtual s)");
  std::vector<int> widths = {10, 16, 16, 16, 16};
  PrintRow({"system", "256KB", "1MB", "4MB", "16MB"}, widths);
  for (const auto& system : systems) {
    std::vector<std::string> cells = {system.name};
    for (size_t size : kSizes) {
      LatencySummary summary = Summarize(system.measure(size));
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "%s / %s",
                    FormatSeconds(summary.p50).c_str(),
                    FormatSeconds(summary.p90).c_str());
      cells.push_back(buffer);
    }
    PrintRow(cells, widths);
  }
  std::printf(
      "\nPaper shape check: B variants much faster than NB (upload already\n"
      "done when close returns); both far below Dropbox, whose monitor+poll\n"
      "floor dominates small files and whose shaped upload dominates 16MB.\n");
}

}  // namespace
}  // namespace scfs

int main() {
  scfs::Run();
  return 0;
}
