#include "bench/harness.h"

#include <algorithm>
#include <cstdlib>
#include <cmath>

#include "src/scfs/deployment.h"

namespace scfs {

double BenchTimeScale(double default_scale) {
  const char* override_scale = std::getenv("SCFS_TIME_SCALE");
  if (override_scale == nullptr || *override_scale == '\0') {
    return default_scale;
  }
  char* end = nullptr;
  double scale = std::strtod(override_scale, &end);
  if (end == override_scale || *end != '\0' || !std::isfinite(scale) ||
      scale <= 0) {
    std::fprintf(stderr,
                 "error: SCFS_TIME_SCALE='%s' is not a positive number; "
                 "refusing to run at an unintended time scale\n",
                 override_scale);
    std::exit(2);
  }
  return scale;
}

double BenchTimeScale() {
  return BenchTimeScale(2e-4);  // 1 virtual second = 0.2 real milliseconds
}

namespace {
constexpr size_t kChunk = 128 * 1024;

Bytes MakePayload(size_t size, uint8_t fill) { return Bytes(size, fill); }
}  // namespace

MicroResult MicroSequentialRead(Environment* env, FileSystem* fs,
                                size_t file_size) {
  MicroResult result;
  if (!fs->WriteFile("/seqr", MakePayload(file_size, 1)).ok()) {
    result.ok = false;
    return result;
  }
  auto handle = fs->Open("/seqr", kOpenRead);
  if (!handle.ok()) {
    result.ok = false;
    return result;
  }
  Environment::ResetThreadCharged();
  size_t offset = 0;
  while (offset < file_size) {
    auto chunk = fs->Read(*handle, offset, kChunk);
    if (!chunk.ok() || chunk->empty()) {
      result.ok = false;
      break;
    }
    offset += chunk->size();
  }
  result.seconds = ToSeconds(Environment::ThreadCharged());
  (void)fs->Close(*handle);
  return result;
}

MicroResult MicroSequentialWrite(Environment* env, FileSystem* fs,
                                 size_t file_size) {
  MicroResult result;
  auto handle = fs->Open("/seqw", kOpenWrite | kOpenCreate | kOpenTruncate);
  if (!handle.ok()) {
    result.ok = false;
    return result;
  }
  Bytes chunk = MakePayload(kChunk, 2);
  Environment::ResetThreadCharged();
  for (size_t offset = 0; offset < file_size; offset += kChunk) {
    if (!fs->Write(*handle, offset, chunk).ok()) {
      result.ok = false;
      break;
    }
  }
  result.seconds = ToSeconds(Environment::ThreadCharged());
  (void)fs->Close(*handle);
  (void)env;
  return result;
}

MicroResult MicroRandomRead(Environment* env, FileSystem* fs, size_t file_size,
                            int ops, int report_ops) {
  MicroResult result;
  if (!fs->WriteFile("/randr", MakePayload(file_size, 3)).ok()) {
    result.ok = false;
    return result;
  }
  auto handle = fs->Open("/randr", kOpenRead);
  if (!handle.ok()) {
    result.ok = false;
    return result;
  }
  Rng rng(11);
  Environment::ResetThreadCharged();
  for (int i = 0; i < ops; ++i) {
    uint64_t offset = rng.UniformU64(file_size - 4096);
    if (!fs->Read(*handle, offset, 4096).ok()) {
      result.ok = false;
      break;
    }
  }
  result.seconds = ToSeconds(Environment::ThreadCharged()) *
                   (static_cast<double>(report_ops) / ops);
  (void)fs->Close(*handle);
  (void)env;
  return result;
}

MicroResult MicroRandomWrite(Environment* env, FileSystem* fs,
                             size_t file_size, int ops, int report_ops) {
  MicroResult result;
  if (!fs->WriteFile("/randw", MakePayload(file_size, 4)).ok()) {
    result.ok = false;
    return result;
  }
  auto handle = fs->Open("/randw", kOpenWrite);
  if (!handle.ok()) {
    result.ok = false;
    return result;
  }
  Rng rng(12);
  Bytes block = MakePayload(4096, 5);
  Environment::ResetThreadCharged();
  for (int i = 0; i < ops; ++i) {
    uint64_t offset = rng.UniformU64(file_size - 4096);
    if (!fs->Write(*handle, offset, block).ok()) {
      result.ok = false;
      break;
    }
  }
  result.seconds = ToSeconds(Environment::ThreadCharged()) *
                   (static_cast<double>(report_ops) / ops);
  (void)fs->Close(*handle);
  (void)env;
  return result;
}

MicroResult MicroCreateFiles(Environment* env, FileSystem* fs, int count,
                             size_t size, const std::string& dir) {
  MicroResult result;
  if (!fs->Mkdir(dir).ok()) {
    result.ok = false;
    return result;
  }
  Bytes payload = MakePayload(size, 6);
  (void)env;
  Environment::ResetThreadCharged();
  for (int i = 0; i < count; ++i) {
    if (!fs->WriteFile(dir + "/f" + std::to_string(i), payload).ok()) {
      result.ok = false;
      break;
    }
  }
  result.seconds = ToSeconds(Environment::ThreadCharged());
  return result;
}

MicroResult MicroCopyFiles(Environment* env, FileSystem* fs, int count,
                           size_t size) {
  MicroResult result;
  if (!fs->Mkdir("/cpsrc").ok() || !fs->Mkdir("/cpdst").ok()) {
    result.ok = false;
    return result;
  }
  Bytes payload = MakePayload(size, 7);
  for (int i = 0; i < count; ++i) {
    if (!fs->WriteFile("/cpsrc/f" + std::to_string(i), payload).ok()) {
      result.ok = false;
      return result;
    }
  }
  (void)env;
  Environment::ResetThreadCharged();
  for (int i = 0; i < count; ++i) {
    auto data = fs->ReadFile("/cpsrc/f" + std::to_string(i));
    if (!data.ok() ||
        !fs->WriteFile("/cpdst/f" + std::to_string(i), *data).ok()) {
      result.ok = false;
      break;
    }
  }
  result.seconds = ToSeconds(Environment::ThreadCharged());
  return result;
}

// ---------------------------------------------------------------------------
// Figure 7 trace.
// ---------------------------------------------------------------------------

namespace {
Status WriteWholeFile(FileSystem* fs, const std::string& path,
                      const Bytes& data) {
  return fs->WriteFile(path, data);
}

Result<Bytes> ReadWholeFile(FileSystem* fs, const std::string& path) {
  return fs->ReadFile(path);
}
}  // namespace

FileSyncResult RunFileSyncBenchmark(Environment* env, FileSystem* fs,
                                    FileSystem* lock_fs, size_t file_size,
                                    int iterations) {
  FileSyncResult result;
  Bytes document = MakePayload(file_size, 8);
  Bytes lock_payload = MakePayload(512, 9);

  for (int iteration = 0; iteration < iterations && result.ok; ++iteration) {
    const std::string f = "/doc" + std::to_string(iteration) + ".odt";
    const std::string lf1 = "/.lock1-" + std::to_string(iteration);
    const std::string lf2 = "/.lock2-" + std::to_string(iteration);
    if (!fs->WriteFile(f, document).ok()) {
      result.ok = false;
      break;
    }

    // -- Open action: open(f,rw), read(f), owc(lf1), orc(f), orc(lf1).
    Environment::ResetThreadCharged();
    auto fh = fs->Open(f, kOpenRead | kOpenWrite);
    if (!fh.ok()) {
      result.ok = false;
      break;
    }
    (void)fs->Read(*fh, 0, file_size);
    result.ok = result.ok && WriteWholeFile(lock_fs, lf1, lock_payload).ok();
    result.ok = result.ok && ReadWholeFile(fs, f).ok();
    result.ok = result.ok && ReadWholeFile(lock_fs, lf1).ok();
    result.open_s += ToSeconds(Environment::ThreadCharged());

    // -- Save action (Figure 7): orc(f), close(f), orc(lf1), delete(lf1),
    // owc(lf2), orc(lf2), truncate+rewrite(f), ofsc(f), orc(f), open(f,rw).
    Environment::ResetThreadCharged();
    result.ok = result.ok && ReadWholeFile(fs, f).ok();
    result.ok = result.ok && fs->Close(*fh).ok();
    result.ok = result.ok && ReadWholeFile(lock_fs, lf1).ok();
    result.ok = result.ok && lock_fs->Unlink(lf1).ok();
    result.ok = result.ok && WriteWholeFile(lock_fs, lf2, lock_payload).ok();
    result.ok = result.ok && ReadWholeFile(lock_fs, lf2).ok();
    // truncate(f,0) + open-write-close(f): one open with O_TRUNC.
    {
      auto wh = fs->Open(f, kOpenWrite | kOpenTruncate);
      result.ok = result.ok && wh.ok();
      if (wh.ok()) {
        result.ok = result.ok && fs->Write(*wh, 0, document).ok();
        result.ok = result.ok && fs->Close(*wh).ok();
      }
    }
    // open-fsync-close(f).
    {
      auto sh = fs->Open(f, kOpenWrite);
      result.ok = result.ok && sh.ok();
      if (sh.ok()) {
        result.ok = result.ok && fs->Fsync(*sh).ok();
        result.ok = result.ok && fs->Close(*sh).ok();
      }
    }
    result.ok = result.ok && ReadWholeFile(fs, f).ok();
    fh = fs->Open(f, kOpenRead | kOpenWrite);
    result.ok = result.ok && fh.ok();
    result.save_s += ToSeconds(Environment::ThreadCharged());

    // -- Close action: close(f), orc(lf2), delete(lf2).
    Environment::ResetThreadCharged();
    if (fh.ok()) {
      result.ok = result.ok && fs->Close(*fh).ok();
    }
    result.ok = result.ok && ReadWholeFile(lock_fs, lf2).ok();
    result.ok = result.ok && lock_fs->Unlink(lf2).ok();
    result.close_s += ToSeconds(Environment::ThreadCharged());
  }

  if (iterations > 0) {
    result.open_s /= iterations;
    result.save_s /= iterations;
    result.close_s /= iterations;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Machine-readable results.
// ---------------------------------------------------------------------------

void BenchJsonWriter::Add(const std::string& name, double value,
                          const std::string& unit) {
  entries_.push_back(Entry{name, value, unit});
}

std::string BenchJsonWriter::ToJson() const {
  std::string out = "[\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.3f", entries_[i].value);
    out += "  {\"name\": \"" + entries_[i].name + "\", \"value\": " + value +
           ", \"unit\": \"" + entries_[i].unit + "\"}";
    out += (i + 1 < entries_.size()) ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

bool BenchJsonWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return false;
  }
  const std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// ---------------------------------------------------------------------------
// Statistics & printing.
// ---------------------------------------------------------------------------

namespace {
// Interpolated rank over an already-sorted sample.
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  double rank = p / 100.0 * (static_cast<double>(sorted.size()) - 1);
  size_t low = static_cast<size_t>(std::floor(rank));
  size_t high = static_cast<size_t>(std::ceil(rank));
  double fraction = rank - static_cast<double>(low);
  return sorted[low] + (sorted[high] - sorted[low]) * fraction;
}
}  // namespace

double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return SortedPercentile(values, p);
}

LatencySummary Summarize(std::vector<double> values) {
  LatencySummary out;
  if (values.empty()) {
    return out;
  }
  std::sort(values.begin(), values.end());
  out.count = values.size();
  double sum = 0;
  for (double v : values) {
    sum += v;
  }
  out.mean = sum / static_cast<double>(values.size());
  out.p50 = SortedPercentile(values, 50);
  out.p90 = SortedPercentile(values, 90);
  out.p95 = SortedPercentile(values, 95);
  out.p99 = SortedPercentile(values, 99);
  out.max = values.back();
  return out;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    int width = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", width, cells[i].c_str());
  }
  std::printf("\n");
}

void AccumulateCoordCounters(Deployment* deployment, SmrCounters* into) {
  if (deployment->replicated_coord() != nullptr) {
    *into += deployment->replicated_coord()->cluster().counters();
  }
  if (deployment->partitioned_coord() != nullptr) {
    *into += deployment->partitioned_coord()->counters();
  }
}

void PrintCoordCounters(const std::string& label,
                        const SmrCounters& counters) {
  std::printf(
      "\n%s: %llu ordered commands in %llu instances (%.1f reqs/instance), "
      "%llu fast-path reads, %llu fallbacks\n",
      label.c_str(),
      static_cast<unsigned long long>(counters.ordered_commands),
      static_cast<unsigned long long>(counters.proposed_instances),
      counters.proposed_instances > 0
          ? static_cast<double>(counters.proposed_requests) /
                counters.proposed_instances
          : 0.0,
      static_cast<unsigned long long>(counters.fast_path_reads),
      static_cast<unsigned long long>(counters.fast_path_fallbacks));
}

std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds < 0.005) {
    std::snprintf(buffer, sizeof(buffer), "%.4f", seconds);
  } else if (seconds < 10) {
    std::snprintf(buffer, sizeof(buffer), "%.2f", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", seconds);
  }
  return buffer;
}

}  // namespace scfs
