// Table 3 reproduction: six Filebench micro-benchmarks over nine file
// systems — SCFS {AWS,CoC} x {NS,NB,B}, S3FS, S3QL and LocalFS.
//
// IO-intensive rows (sequential/random read/write) exclude open/close and
// report the modelled FUSE+disk cost charged to the benchmark thread, exactly
// as Filebench measures only the IO region. Metadata-intensive rows (create,
// copy) report elapsed virtual time. Random-IO rows run 16k operations and
// scale to the paper's 256k.

#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/baselines/local_fs.h"
#include "src/baselines/s3_baselines.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

constexpr size_t kIoFileSize = 4 * 1024 * 1024;  // 4 MB
constexpr int kRandomOps = 16 * 1024;
constexpr int kReportOps = 256 * 1024;
constexpr int kCreateCount = 200;
constexpr int kCopyCount = 100;
constexpr size_t kSmallFile = 16 * 1024;

struct SystemUnderTest {
  std::string name;
  // Fresh stack per benchmark so caches/costs do not leak across rows.
  std::function<void(const std::function<void(FileSystem*)>&)> with_fs;
};

// Coordination-plane counters accumulated across the SCFS-CoC rows.
SmrCounters g_coord_counters;

void RunAll() {
  auto env = Environment::Scaled(BenchTimeScale());

  std::vector<SystemUnderTest> systems;

  auto add_scfs = [&](const std::string& name, ScfsBackendKind backend,
                      ScfsMode mode) {
    systems.push_back(SystemUnderTest{
        name, [&, backend, mode](const std::function<void(FileSystem*)>& fn) {
          DeploymentOptions options;
          options.backend = backend;
          auto deployment = Deployment::Create(env.get(), options);
          ScfsOptions fs_options;
          fs_options.mode = mode;
          auto fs = deployment->Mount("u", fs_options);
          if (!fs.ok()) {
            return;
          }
          FuseSim fuse(env.get(), fs->get());
          fn(&fuse);
          (*fs)->DrainBackground();
          (void)(*fs)->Unmount();
          AccumulateCoordCounters(deployment.get(), &g_coord_counters);
        }});
  };

  add_scfs("SCFS-AWS-NS", ScfsBackendKind::kAws, ScfsMode::kNonSharing);
  add_scfs("SCFS-AWS-NB", ScfsBackendKind::kAws, ScfsMode::kNonBlocking);
  add_scfs("SCFS-AWS-B", ScfsBackendKind::kAws, ScfsMode::kBlocking);
  add_scfs("SCFS-CoC-NS", ScfsBackendKind::kCoc, ScfsMode::kNonSharing);
  add_scfs("SCFS-CoC-NB", ScfsBackendKind::kCoc, ScfsMode::kNonBlocking);
  add_scfs("SCFS-CoC-B", ScfsBackendKind::kCoc, ScfsMode::kBlocking);

  systems.push_back(SystemUnderTest{
      "S3FS", [&](const std::function<void(FileSystem*)>& fn) {
        auto cloud = MakeCloud(ProviderId::kAmazonS3, env.get(), 91);
        // s3fs issues several REST calls per create/open/flush; model the
        // extra round trips it is known for.
        S3fsLike fs(env.get(), cloud.get(), {"amazon-s3:u"});
        FuseSim fuse(env.get(), &fs);
        fn(&fuse);
      }});
  systems.push_back(SystemUnderTest{
      "S3QL", [&](const std::function<void(FileSystem*)>& fn) {
        auto cloud = MakeCloud(ProviderId::kAmazonS3, env.get(), 92);
        S3qlLike fs(env.get(), cloud.get(), {"amazon-s3:u"});
        FuseSim fuse(env.get(), &fs);
        fn(&fuse);
        fs.DrainBackground();
      }});
  systems.push_back(SystemUnderTest{
      "LocalFS", [&](const std::function<void(FileSystem*)>& fn) {
        LocalFs fs(env.get());
        FuseSim fuse(env.get(), &fs);
        fn(&fuse);
      }});

  struct Row {
    std::string label;
    std::function<MicroResult(FileSystem*)> run;
  };
  std::vector<Row> rows = {
      {"seq read 4MB",
       [&](FileSystem* fs) {
         return MicroSequentialRead(env.get(), fs, kIoFileSize);
       }},
      {"seq write 4MB",
       [&](FileSystem* fs) {
         return MicroSequentialWrite(env.get(), fs, kIoFileSize);
       }},
      {"rand 4KB-read x256k",
       [&](FileSystem* fs) {
         return MicroRandomRead(env.get(), fs, kIoFileSize, kRandomOps,
                                kReportOps);
       }},
      {"rand 4KB-write x256k",
       [&](FileSystem* fs) {
         return MicroRandomWrite(env.get(), fs, kIoFileSize, kRandomOps,
                                 kReportOps);
       }},
      {"create 200x16KB",
       [&](FileSystem* fs) {
         return MicroCreateFiles(env.get(), fs, kCreateCount, kSmallFile);
       }},
      {"copy 100x16KB",
       [&](FileSystem* fs) {
         return MicroCopyFiles(env.get(), fs, kCopyCount, kSmallFile);
       }},
  };

  PrintHeader("Table 3: Filebench micro-benchmark latency (virtual seconds)");
  std::vector<int> widths = {22};
  std::vector<std::string> header = {"benchmark"};
  for (const auto& system : systems) {
    header.push_back(system.name);
    widths.push_back(13);
  }
  PrintRow(header, widths);

  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.label};
    for (const auto& system : systems) {
      MicroResult result;
      system.with_fs([&](FileSystem* fs) { result = row.run(fs); });
      cells.push_back(result.ok ? FormatSeconds(result.seconds) : "FAIL");
    }
    PrintRow(cells, widths);
  }
  std::printf(
      "\nPaper shape check: NS/S3QL/LocalFS ~local on all rows; S3QL slow on\n"
      "random writes (FUSE small-chunk issue); S3FS slow everywhere (no\n"
      "memory cache, blocking S3 access); create/copy 2-3 orders of magnitude\n"
      "slower on NB/B/S3FS than on NS/S3QL/LocalFS; B slower than NB.\n");
  PrintCoordCounters("Coordination counters (CoC rows)", g_coord_counters);
}

}  // namespace
}  // namespace scfs

int main() {
  scfs::RunAll();
  return 0;
}
