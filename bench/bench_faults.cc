// bench_faults: open-loop personalities under chaos-scheduled fault
// campaigns (src/sim/fault_schedule.h, src/chaos/campaign.h).
//
// For each (personality x campaign) pair the bench mounts a fresh
// cloud-of-clouds deployment, runs the personality fault-free once to get a
// baseline tail, then replays it at the same offered rate while a
// ChaosRunner walks the campaign's fault windows. The fleet's timeline
// buckets are intersected with the campaign windows to report, per pair:
//
//   error_rate           client-visible non-OK fraction over the whole run
//   p99_inflation_x      whole-run p99 vs the fault-free baseline p99
//   fault_goodput_ops_s  successful ops/s inside the fault windows
//   recovery_ms          time after the last window until a timeline bucket's
//                        p99 is back within 1.5x of baseline (-1 = never)
//
// plus the data plane's self-healing telemetry (retries, deadline expiries,
// hedged reads, breaker trips) summed over the deployment's DepSky clients.
// Results go to BENCH_faults.json; tools/check_bench_faults.py gates the
// outage campaigns (error rate zero, p99 inflation < 2x) in CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/scenario/client_fleet.h"
#include "bench/scenario/personality.h"
#include "src/chaos/campaign.h"
#include "src/cloud/simulated_cloud.h"
#include "src/common/rng.h"
#include "src/crypto/sha1.h"
#include "src/depsky/depsky.h"
#include "src/scfs/deployment.h"
#include "src/sim/fault_schedule.h"

namespace scfs {
namespace {

struct Options {
  bool quick = false;
  bool verbose = false;
  std::string json_path = "BENCH_faults.json";
  std::vector<std::string> personalities;  // empty = webserver, oltp
  std::vector<std::string> campaigns;      // empty = the builtin set
  std::string schedule_file;               // extra custom campaign
  double rate_override = 0;
  unsigned workers = 64;
  unsigned mounts = 2;
};

// Same clock as the scenario sweeps: 1 virtual second = 0.2 real seconds
// unless SCFS_TIME_SCALE overrides it. Fault campaigns are timer-driven
// (deadlines, hedges, chaos edges), so this bench requires a scaled — not
// instant — environment.
double FaultTimeScale() { return BenchTimeScale(0.2); }

// All runs share one window layout: arrivals for 16 virtual seconds, which
// covers every builtin campaign's horizon (12 s) plus a 4 s recovery tail.
constexpr VirtualDuration kRunDuration = 16 * kSecond;
constexpr VirtualDuration kDrainGrace = 4 * kSecond;
constexpr VirtualDuration kBucket = 500 * kMillisecond;
// A timeline bucket needs a handful of samples before its p99 means
// anything; sparser buckets are skipped by the recovery scan.
constexpr uint64_t kMinBucketSamples = 5;

struct Telemetry {
  uint64_t retries = 0;
  uint64_t deadline_expiries = 0;
  uint64_t hedged_reads = 0;
  uint64_t breaker_trips = 0;
  uint64_t storage_read_retries = 0;
};

struct RunOutcome {
  FleetResult result;
  Telemetry telemetry;
  std::vector<std::pair<VirtualTime, VirtualTime>> windows;  // absolute
};

double ErrorRate(const FleetResult& result) {
  return result.executed > 0
             ? static_cast<double>(result.errors) / result.executed
             : 0;
}

bool Overlaps(VirtualTime a_begin, VirtualTime a_end, VirtualTime b_begin,
              VirtualTime b_end) {
  return a_begin < b_end && b_begin < a_end;
}

// One personality run against a fresh deployment; `schedule` may be null
// (the fault-free baseline).
RunOutcome RunOnce(Environment* env, const Options& options,
                   const PersonalitySpec& spec, double rate,
                   const FaultSchedule* schedule) {
  DeploymentOptions dopts;
  dopts.backend = ScfsBackendKind::kCoc;
  auto deployment = Deployment::Create(env, dopts);

  std::vector<std::unique_ptr<ScfsFileSystem>> owned;
  std::vector<FileSystem*> mounts;
  for (unsigned i = 0; i < options.mounts; ++i) {
    ScfsOptions mopts;
    mopts.mode = ScfsMode::kNonBlocking;
    // Tiny local caches so reads actually reach the DepSky data plane —
    // the point of the campaign is the cloud path, not the cache.
    mopts.storage.memory_cache_bytes = 64 * 1024;
    mopts.storage.disk_cache_bytes = 256 * 1024;
    auto fs = deployment->Mount("bench", mopts);
    if (!fs.ok()) {
      std::fprintf(stderr, "mount failed: %s\n",
                   fs.status().ToString().c_str());
      std::exit(1);
    }
    mounts.push_back(fs->get());
    owned.push_back(std::move(*fs));
  }

  ClientFleet fleet(env, spec, mounts, deployment.get());
  Status setup = fleet.Setup();
  if (!setup.ok()) {
    std::fprintf(stderr, "%s: setup failed: %s\n", spec.name.c_str(),
                 setup.ToString().c_str());
    std::exit(1);
  }

  std::unique_ptr<ChaosRunner> runner;
  if (schedule != nullptr) {
    runner = std::make_unique<ChaosRunner>(env, *schedule,
                                           TargetsFor(deployment.get()));
    Status started = runner->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "campaign %s: %s\n", schedule->name.c_str(),
                   started.ToString().c_str());
      std::exit(1);
    }
  }

  FleetConfig config;
  config.clients = 100000;
  config.offered_ops_per_s = rate;
  config.workers = options.workers;
  config.duration = kRunDuration;
  config.drain_grace = kDrainGrace;
  config.timeline_bucket = kBucket;

  RunOutcome out;
  out.result = fleet.Run(config);
  if (runner != nullptr) {
    runner->Join();
    out.windows = runner->FaultWindows();
    if (options.verbose) {
      for (const std::string& line : runner->log()) {
        std::printf("    chaos: %s\n", line.c_str());
      }
    }
  }

  for (const auto& client : deployment->depsky_clients()) {
    out.telemetry.retries += client->retries();
    out.telemetry.deadline_expiries += client->deadline_expiries();
    out.telemetry.hedged_reads += client->hedged_reads();
    out.telemetry.breaker_trips += client->health().breaker_trips();
  }
  for (const auto& fs : owned) {
    out.telemetry.storage_read_retries += fs->storage_service().read_retries();
  }
  return out;
}

// Successful ops/s inside the fault windows, and a merged latency recorder
// of the buckets that overlap them.
void FaultWindowStats(const RunOutcome& run, double* goodput_ops_s,
                      LatencyRecorder* fault_latency) {
  uint64_t good = 0;
  VirtualDuration covered = 0;
  const VirtualTime start = run.result.run_start;
  for (const FleetTimelineBucket& bucket : run.result.timeline) {
    const VirtualTime begin = start + bucket.start;
    const VirtualTime end = begin + run.result.timeline_bucket;
    bool in_fault = false;
    for (const auto& window : run.windows) {
      if (Overlaps(begin, end, window.first, window.second)) {
        in_fault = true;
        break;
      }
    }
    if (!in_fault) {
      continue;
    }
    good += bucket.executed - bucket.errors;
    covered += run.result.timeline_bucket;
    fault_latency->Merge(bucket.latency);
  }
  *goodput_ops_s = covered > 0 ? static_cast<double>(good) / ToSeconds(covered)
                               : 0;
}

// Milliseconds from the end of the last fault window until the first
// adequately-sampled timeline bucket whose p99 is back within
// `threshold` x the baseline p99. -1 = never recovered inside the run.
double RecoveryMs(const RunOutcome& run, uint64_t baseline_p99_us,
                  double threshold) {
  if (run.windows.empty() || baseline_p99_us == 0) {
    return -1;
  }
  VirtualTime last_end = 0;
  for (const auto& window : run.windows) {
    last_end = std::max(last_end, window.second);
  }
  const uint64_t bound =
      static_cast<uint64_t>(static_cast<double>(baseline_p99_us) * threshold);
  const VirtualTime start = run.result.run_start;
  for (const FleetTimelineBucket& bucket : run.result.timeline) {
    const VirtualTime begin = start + bucket.start;
    if (begin < last_end || bucket.executed < kMinBucketSamples) {
      continue;
    }
    if (bucket.latency.PercentileUs(99) <= bound) {
      return static_cast<double>(begin - last_end) / 1000.0;
    }
  }
  return -1;
}

void RunCampaign(Environment* env, const Options& options,
                 const PersonalitySpec& spec, double rate,
                 const RunOutcome& baseline, const FaultSchedule& schedule,
                 BenchJsonWriter* json, const std::vector<int>& widths) {
  RunOutcome run = RunOnce(env, options, spec, rate, &schedule);

  const double error_rate = ErrorRate(run.result);
  const double p99 = run.result.latency.PercentileMs(99);
  const double baseline_p99 = baseline.result.latency.PercentileMs(99);
  const double inflation = baseline_p99 > 0 ? p99 / baseline_p99 : 0;

  double fault_goodput = 0;
  LatencyRecorder fault_latency;
  FaultWindowStats(run, &fault_goodput, &fault_latency);
  const double recovery_ms =
      RecoveryMs(run, baseline.result.latency.PercentileUs(99), 1.5);

  PrintRow({schedule.name, FormatSeconds(run.result.achieved_ops_per_s),
            FormatSeconds(p99), FormatSeconds(inflation),
            FormatSeconds(fault_goodput),
            recovery_ms < 0 ? "never" : FormatSeconds(recovery_ms),
            std::to_string(run.result.errors),
            std::to_string(run.telemetry.retries),
            std::to_string(run.telemetry.hedged_reads),
            std::to_string(run.telemetry.breaker_trips)},
           widths);

  const std::string prefix = "faults_" + spec.name + "_" + schedule.name;
  json->Add(prefix + "_error_rate", error_rate, "fraction");
  json->Add(prefix + "_errors", static_cast<double>(run.result.errors), "ops");
  json->Add(prefix + "_dropped", static_cast<double>(run.result.dropped),
            "ops");
  json->Add(prefix + "_p99_ms", p99, "ms");
  json->Add(prefix + "_baseline_p99_ms", baseline_p99, "ms");
  json->Add(prefix + "_p99_inflation_x", inflation, "x");
  json->Add(prefix + "_fault_window_p99_ms", fault_latency.PercentileMs(99),
            "ms");
  json->Add(prefix + "_fault_goodput_ops_s", fault_goodput, "ops/s");
  json->Add(prefix + "_goodput_ratio",
            rate > 0 ? fault_goodput / rate : 0, "fraction");
  json->Add(prefix + "_recovery_ms", recovery_ms, "ms");
  json->Add(prefix + "_retries", static_cast<double>(run.telemetry.retries),
            "ops");
  json->Add(prefix + "_deadline_expiries",
            static_cast<double>(run.telemetry.deadline_expiries), "ops");
  json->Add(prefix + "_hedged_reads",
            static_cast<double>(run.telemetry.hedged_reads), "ops");
  json->Add(prefix + "_breaker_trips",
            static_cast<double>(run.telemetry.breaker_trips), "trips");
  json->Add(prefix + "_storage_read_retries",
            static_cast<double>(run.telemetry.storage_read_retries), "ops");
}

void RunPersonality(Environment* env, const Options& options,
                    PersonalitySpec spec,
                    const std::vector<FaultSchedule>& campaigns,
                    BenchJsonWriter* json) {
  if (options.quick && spec.fileset_files > 128) {
    spec.fileset_files = 128;  // setup dominates CI time
  }
  // The write-heavy oltp mix saturates this deliberately tiny-cache
  // deployment far earlier than the read-heavy personalities (block writes
  // serialize through DepSky PUT plus lock renewals), and a saturated
  // baseline measures queueing collapse, not fault masking.
  double rate = options.quick ? 40 : 80;
  if (spec.name == "oltp") {
    rate = 8;
  }
  if (options.rate_override > 0) {
    rate = options.rate_override;
  }

  PrintHeader("Faults: " + spec.name + " @ " + FormatSeconds(rate) +
              " ops/s offered");
  std::vector<int> widths = {12, 11, 9, 9, 11, 9, 8, 8, 8, 8};
  PrintRow({"campaign", "achieved/s", "p99 ms", "infl x", "fault op/s",
            "recov ms", "errors", "retries", "hedges", "trips"},
           widths);

  RunOutcome baseline = RunOnce(env, options, spec, rate, nullptr);
  PrintRow({"(baseline)", FormatSeconds(baseline.result.achieved_ops_per_s),
            FormatSeconds(baseline.result.latency.PercentileMs(99)), "1.00",
            "-", "-", std::to_string(baseline.result.errors),
            std::to_string(baseline.telemetry.retries),
            std::to_string(baseline.telemetry.hedged_reads),
            std::to_string(baseline.telemetry.breaker_trips)},
           widths);
  const std::string prefix = "faults_" + spec.name;
  json->Add(prefix + "_baseline_p99_ms",
            baseline.result.latency.PercentileMs(99), "ms");
  json->Add(prefix + "_baseline_error_rate", ErrorRate(baseline.result),
            "fraction");

  for (const FaultSchedule& campaign : campaigns) {
    RunCampaign(env, options, spec, rate, baseline, campaign, json, widths);
  }
}

// ---------------------------------------------------------------------------
// Stripe-repair drill: a striped large file rides out a full cloud outage
// with zero client-visible errors, the outage "loses the disk" (the cloud
// comes back empty), and one scrubber pass rebuilds every lost stored object
// byte-identically from the surviving shards. Runs on its own instant
// environment — unlike the campaigns above, repair is pure data-plane work,
// so the interesting outputs are counts (errors, missing, repaired) and the
// real-time rebuild rate, not modelled latencies.
// ---------------------------------------------------------------------------

void RunStripeRepairDrill(const Options& options, BenchJsonWriter* json) {
  const size_t unit_size = 4u << 20;
  const size_t file_size = (options.quick ? 4 : 16) * unit_size;
  auto env = Environment::Instant();

  std::vector<std::unique_ptr<SimulatedCloud>> clouds;
  std::vector<DepSkyCloud> set;
  for (unsigned i = 0; i < 4; ++i) {
    CloudProfile profile;
    profile.name = "repair" + std::to_string(i);
    clouds.push_back(
        std::make_unique<SimulatedCloud>(profile, env.get(), 170 + i));
    set.push_back(
        DepSkyCloud{clouds.back().get(), {profile.name + ":bench"}});
  }
  DepSkyConfig config;
  config.f = 1;
  config.auth_key = ToBytes("bench-auth-key");
  config.stripe_threshold = unit_size;
  config.stripe_unit_size = unit_size;
  DepSkyClient client(env.get(), std::move(set), config, 4242);

  auto fatal = [](const std::string& what, const Status& status) {
    std::fprintf(stderr, "stripe repair drill: %s: %s\n", what.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  };

  Rng rng(2026);
  Bytes data = rng.RandomBytes(file_size);
  const std::string hash = HexEncode(Sha1::Hash(data));
  auto written = client.WriteVersion("big", hash, data);
  if (!written.ok()) {
    fatal("write", written.status());
  }
  auto md = client.ReadMetadata("big");
  if (!md.ok()) {
    fatal("metadata", md.status());
  }
  const DepSkyVersion version = md->versions.back();
  const size_t units = version.stripe_units.size();

  // The victim is the cloud holding shards of the most stripe units — the
  // outage that costs the manifest the most redundancy.
  unsigned victim = 0;
  size_t victim_units = 0;
  for (unsigned c = 0; c < clouds.size(); ++c) {
    size_t held = 0;
    for (const DepSkyStripeUnit& u : version.stripe_units) {
      if (c < u.cloud_shard.size() && u.cloud_shard[c] >= 0) {
        ++held;
      }
    }
    if (held > victim_units) {
      victim = c;
      victim_units = held;
    }
  }

  // Phase 1 — outage. With the victim dark the client still has n-f = 3
  // holders per unit, so every read must succeed: one full-file GET plus a
  // ReadAt probe across each stripe boundary (the unit-overlap fast path).
  clouds[victim]->faults().SetUnavailable(true);
  uint64_t reads = 0;
  uint64_t client_errors = 0;
  {
    auto whole = client.ReadByHash("big", hash);
    ++reads;
    if (!whole.ok() || *whole != data) {
      ++client_errors;
    }
    for (size_t u = 1; u < units; ++u) {
      const uint64_t offset = static_cast<uint64_t>(u) * unit_size - 512;
      auto slice = client.ReadAt("big", hash, offset, 1024);
      ++reads;
      if (!slice.ok() || slice->size() != 1024 ||
          !std::equal(slice->begin(), slice->end(), data.begin() + offset)) {
        ++client_errors;
      }
    }
  }

  // Phase 2 — the cloud returns, but empty: every stored object the victim
  // held is gone (outage took the disk with it).
  clouds[victim]->faults().SetUnavailable(false);
  uint64_t wiped = 0;
  for (size_t u = 0; u < units; ++u) {
    if (version.stripe_units[u].cloud_shard[victim] < 0) {
      continue;
    }
    Status dropped = clouds[victim]->Delete(
        {clouds[victim]->provider_name() + ":bench"},
        DepSkyClient::StripeValueKey("big", version.version, u));
    if (!dropped.ok()) {
      fatal("wipe", dropped);
    }
    ++wiped;
  }

  // Phase 3 — one scrub pass rebuilds the lost objects in place (k surviving
  // shards re-derive the data, parity, and key share; the repaired object
  // must re-hash to the manifest before upload).
  const auto repair_start = std::chrono::steady_clock::now();
  auto report = client.ScrubUnit("big");
  const double repair_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    repair_start)
          .count();
  if (!report.ok()) {
    fatal("scrub", report.status());
  }
  // Payload-shard bytes restored (framing overhead excluded): each stored
  // object carries one RS shard of unit_size / k bytes.
  const double repaired_mb = static_cast<double>(report->objects_repaired) *
                             (static_cast<double>(unit_size) / (config.f + 1)) /
                             (1024.0 * 1024.0);
  const double repair_mb_s = repair_s > 0 ? repaired_mb / repair_s : 0;

  // Phase 4 — confirm: a second pass finds nothing to do, and the file still
  // reads back byte-identically.
  auto second = client.ScrubUnit("big");
  const bool redundant =
      second.ok() && second->objects_missing == 0 && second->fully_redundant;
  auto verify = client.ReadByHash("big", hash);
  const bool verify_ok = verify.ok() && *verify == data;

  PrintHeader("Stripe repair drill: " +
              std::to_string(file_size >> 20) + " MB file, cloud " +
              std::to_string(victim) + " outage + disk loss");
  std::vector<int> widths = {26, 10};
  PrintRow({"stripe units", std::to_string(units)}, widths);
  PrintRow({"reads during outage", std::to_string(reads)}, widths);
  PrintRow({"client errors", std::to_string(client_errors)}, widths);
  PrintRow({"objects wiped", std::to_string(wiped)}, widths);
  PrintRow({"objects repaired", std::to_string(report->objects_repaired)},
           widths);
  PrintRow({"repair MB/s", FormatSeconds(repair_mb_s)}, widths);
  PrintRow({"fully redundant after", redundant ? "yes" : "NO"}, widths);
  PrintRow({"read-back verified", verify_ok ? "yes" : "NO"}, widths);

  json->Add("stripe_repair_units", static_cast<double>(units), "count");
  json->Add("stripe_repair_reads_during_outage", static_cast<double>(reads),
            "ops");
  json->Add("stripe_repair_client_errors", static_cast<double>(client_errors),
            "ops");
  json->Add("stripe_repair_objects_wiped", static_cast<double>(wiped),
            "objects");
  json->Add("stripe_repair_objects_missing",
            static_cast<double>(report->objects_missing), "objects");
  json->Add("stripe_repair_objects_repaired",
            static_cast<double>(report->objects_repaired), "objects");
  json->Add("stripe_repair_objects_relocated",
            static_cast<double>(report->objects_relocated), "objects");
  json->Add("stripe_repair_failures",
            static_cast<double>(report->repair_failures), "objects");
  json->Add("stripe_repair_pass_ms", repair_s * 1e3, "ms");
  json->Add("stripe_repair_mb_s", repair_mb_s, "MB/s");
  json->Add("stripe_repair_fully_redundant", redundant ? 1.0 : 0.0, "bool");
  json->Add("stripe_repair_verify_ok", verify_ok ? 1.0 : 0.0, "bool");
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto split = [](const std::string& list, std::vector<std::string>* out) {
      std::stringstream stream(list);
      std::string item;
      while (std::getline(stream, item, ',')) {
        if (!item.empty()) {
          out->push_back(item);
        }
      }
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--json") {
      options.json_path = next();
    } else if (arg == "--personality") {
      split(next(), &options.personalities);
    } else if (arg == "--campaign") {
      split(next(), &options.campaigns);
    } else if (arg == "--schedule") {
      options.schedule_file = next();
    } else if (arg == "--rate") {
      options.rate_override = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--workers") {
      options.workers = static_cast<unsigned>(std::atoi(next().c_str()));
    } else if (arg == "--mounts") {
      options.mounts = static_cast<unsigned>(std::atoi(next().c_str()));
    } else if (arg == "--print-campaign") {
      auto text = BuiltinCampaignText(next());
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 2;
      }
      std::printf("%s", text->c_str());
      return 0;
    } else {
      std::fprintf(
          stderr,
          "usage: bench_faults [--quick] [--verbose] [--json PATH]\n"
          "  [--personality a,b,...] [--campaign a,b,...] [--schedule FILE]\n"
          "  [--rate OPS_S] [--workers N] [--mounts N]\n"
          "  [--print-campaign NAME]\n");
      return 2;
    }
  }

  if (options.personalities.empty()) {
    options.personalities = options.quick
                                ? std::vector<std::string>{"webserver"}
                                : std::vector<std::string>{"webserver", "oltp"};
  }
  if (options.campaigns.empty()) {
    options.campaigns =
        options.quick
            ? std::vector<std::string>{"outage", "latency"}
            : std::vector<std::string>{"outage",    "latency",
                                       "flaky",     "corruption",
                                       "byzantine", "replica", "mixed"};
  }

  std::vector<FaultSchedule> campaigns;
  for (const std::string& name : options.campaigns) {
    auto campaign = BuiltinCampaign(name);
    if (!campaign.ok()) {
      std::fprintf(stderr, "%s\n", campaign.status().ToString().c_str());
      return 2;
    }
    campaigns.push_back(std::move(*campaign));
  }
  if (!options.schedule_file.empty()) {
    std::ifstream in(options.schedule_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", options.schedule_file.c_str());
      return 2;
    }
    std::stringstream text;
    text << in.rdbuf();
    auto campaign = ParseFaultSchedule(text.str());
    if (!campaign.ok()) {
      std::fprintf(stderr, "%s\n", campaign.status().ToString().c_str());
      return 2;
    }
    campaign->name = "custom";
    campaigns.push_back(std::move(*campaign));
  }

  auto env = Environment::Scaled(FaultTimeScale());
  BenchJsonWriter json;
  for (const std::string& name : options.personalities) {
    auto spec = BuiltinPersonality(name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    RunPersonality(env.get(), options, *spec, campaigns, &json);
  }
  RunStripeRepairDrill(options, &json);

  if (!json.WriteFile(options.json_path)) {
    return 1;
  }
  std::printf("\nwrote %s\n", options.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace scfs

int main(int argc, char** argv) { return scfs::Main(argc, argv); }
