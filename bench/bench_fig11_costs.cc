// Figure 11 reproduction: the costs of operating and using SCFS.
//
//   (a) fixed operation cost/day of the coordination service (EC2 vs 4xEC2
//       vs CoC; Large and Extra Large) and its metadata capacity,
//   (b) per-operation cost of reading/writing a file vs size (microdollars),
//   (c) storage cost per file version per day vs size.
//
// (b)/(c) are *measured* through the cost meters of the simulated clouds: an
// agent writes a file, a cache-cold agent reads it, and the per-account
// usage deltas are converted to microdollars. The coordination share is the
// measured reply traffic times the replication amplification of the
// BFT-SMaRt protocol (n replies + inter-replica ordering messages).

#include "bench/harness.h"
#include "src/cloud/providers.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

constexpr double kPerGb = 0.12;
// Outbound traffic amplification of one coordination access: for the CoC,
// 4 replica replies plus ~15 protocol-message copies; for AWS, one reply
// from the single VM.
double CoordAmplification(ScfsBackendKind backend) {
  return backend == ScfsBackendKind::kCoc ? 19.0 : 1.0;
}

double CoordCost(uint64_t reply_bytes, ScfsBackendKind backend) {
  return static_cast<double>(reply_bytes) * CoordAmplification(backend) /
         (1024.0 * 1024.0 * 1024.0) * kPerGb;
}

void PartA() {
  PrintHeader("Figure 11(a): coordination service operation cost per day");
  std::vector<int> widths = {14, 10, 10, 10, 14};
  PrintRow({"instance", "EC2", "EC2x4", "CoC", "capacity"}, widths);
  for (bool extra_large : {false, true}) {
    double coc = 0;
    for (unsigned i = 0; i < 4; ++i) {
      coc += CoordinationVmPricePerDay(i, extra_large);
    }
    double ec2 = CoordinationVmPricePerDay(0, extra_large);
    char capacity[32];
    std::snprintf(capacity, sizeof(capacity), "%.0fM files",
                  static_cast<double>(CoordinationCapacityTuples(extra_large)) /
                      1e6);
    char c1[16], c2[16], c3[16];
    std::snprintf(c1, sizeof(c1), "$%.2f", ec2);
    std::snprintf(c2, sizeof(c2), "$%.2f", ec2 * 4);
    std::snprintf(c3, sizeof(c3), "$%.2f", coc);
    PrintRow({extra_large ? "Extra Large" : "Large", c1, c2, c3, capacity},
             widths);
  }
}

struct OpCosts {
  double write_udollars = 0;
  double read_udollars = 0;
  double storage_per_day_udollars = 0;
};

OpCosts MeasureCosts(Environment* env, ScfsBackendKind backend, size_t size) {
  OpCosts costs;
  DeploymentOptions options;
  options.backend = backend;
  auto deployment = Deployment::Create(env, options);
  ScfsOptions fs_options;
  fs_options.mode = ScfsMode::kBlocking;
  auto writer = deployment->Mount("u", fs_options);
  if (!writer.ok()) {
    return costs;
  }

  // --- Write cost: everything charged between open and close.
  UsageTotals usage0 = deployment->CloudUsage("u");
  uint64_t coord0 = deployment->CoordReplyBytes();
  Bytes data(size, 1);
  if (!(*writer)->WriteFile("/f", data).ok()) {
    return costs;
  }
  UsageTotals usage1 = deployment->CloudUsage("u");
  uint64_t coord1 = deployment->CoordReplyBytes();
  costs.write_udollars =
      ToMicrodollars(usage1.TotalCost() - usage0.TotalCost() +
                     CoordCost(coord1 - coord0, backend));

  // --- Read cost: a cache-cold agent of the same account reads the file.
  auto reader = deployment->Mount("u", fs_options);
  if (!reader.ok()) {
    return costs;
  }
  env->Sleep(kSecond);  // metadata cache expiry
  UsageTotals usage2 = deployment->CloudUsage("u");
  uint64_t coord2 = deployment->CoordReplyBytes();
  if (!(*reader)->ReadFile("/f").ok()) {
    return costs;
  }
  UsageTotals usage3 = deployment->CloudUsage("u");
  uint64_t coord3 = deployment->CoordReplyBytes();
  costs.read_udollars =
      ToMicrodollars(usage3.TotalCost() - usage2.TotalCost() +
                     CoordCost(coord3 - coord2, backend));

  // --- Storage cost per day for this one version.
  double per_day = 0;
  for (unsigned i = 0; i < deployment->cloud_count(); ++i) {
    auto* cloud = deployment->cloud(i);
    per_day += cloud->costs().StorageCostPerDay(cloud->provider_name() + ":u");
  }
  costs.storage_per_day_udollars = ToMicrodollars(per_day);
  (void)(*writer)->Unmount();
  (void)(*reader)->Unmount();
  return costs;
}

void PartBandC() {
  auto env = Environment::Scaled(BenchTimeScale());
  const size_t kMb = 1024 * 1024;
  const size_t sizes[] = {kMb, 2 * kMb, 4 * kMb, 8 * kMb,
                          16 * kMb, 24 * kMb, 30 * kMb};

  std::vector<OpCosts> aws;
  std::vector<OpCosts> coc;
  for (size_t size : sizes) {
    aws.push_back(MeasureCosts(env.get(), ScfsBackendKind::kAws, size));
    coc.push_back(MeasureCosts(env.get(), ScfsBackendKind::kCoc, size));
  }

  PrintHeader("Figure 11(b): cost per operation (microdollars)");
  std::vector<int> widths = {10, 14, 14, 14, 14};
  PrintRow({"size(MB)", "CoC read", "AWS read", "CoC write", "AWS write"},
           widths);
  for (size_t i = 0; i < std::size(sizes); ++i) {
    char c0[16], c1[24], c2[24], c3[24], c4[24];
    std::snprintf(c0, sizeof(c0), "%zu", sizes[i] / kMb);
    std::snprintf(c1, sizeof(c1), "%.1f", coc[i].read_udollars);
    std::snprintf(c2, sizeof(c2), "%.1f", aws[i].read_udollars);
    std::snprintf(c3, sizeof(c3), "%.1f", coc[i].write_udollars);
    std::snprintf(c4, sizeof(c4), "%.1f", aws[i].write_udollars);
    PrintRow({c0, c1, c2, c3, c4}, widths);
  }

  PrintHeader("Figure 11(c): storage cost per file version per day (udollars)");
  PrintRow({"size(MB)", "CoC", "AWS", "CoC/AWS", ""}, widths);
  for (size_t i = 0; i < std::size(sizes); ++i) {
    char c0[16], c1[24], c2[24], c3[24];
    std::snprintf(c0, sizeof(c0), "%zu", sizes[i] / kMb);
    std::snprintf(c1, sizeof(c1), "%.1f", coc[i].storage_per_day_udollars);
    std::snprintf(c2, sizeof(c2), "%.1f", aws[i].storage_per_day_udollars);
    std::snprintf(c3, sizeof(c3), "%.2fx",
                  coc[i].storage_per_day_udollars /
                      std::max(1e-9, aws[i].storage_per_day_udollars));
    PrintRow({c0, c1, c2, c3, ""}, widths);
  }
  std::printf(
      "\nPaper shape check: reads grow linearly with size (outbound traffic\n"
      "is charged); writes stay flat (inbound is free; only requests and\n"
      "coordination traffic cost money); CoC storage ~1.5x AWS thanks to\n"
      "erasure coding with preferred quorums (not 4x).\n");
}

}  // namespace
}  // namespace scfs

int main() {
  scfs::PartA();
  scfs::PartBandC();
  return 0;
}
