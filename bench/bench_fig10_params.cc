// Figure 10 reproduction: the effect of (a) the short-term metadata cache
// expiration time and (b) Private Name Spaces under different file-sharing
// percentages, on the two metadata-intensive micro-benchmarks (create 200 /
// copy 100 files of 16 KB), with SCFS-CoC-NB.

#include "bench/harness.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

constexpr int kCreateCount = 200;
constexpr int kCopyCount = 100;
constexpr size_t kFileSize = 16 * 1024;

struct Timing {
  double create_s = 0;
  double copy_s = 0;
};

// Coordination-plane counters accumulated across runs (batching, fast-path
// reads, fallbacks), reported so the shared-metadata workloads show how the
// ordering pipeline behaves under them.
SmrCounters g_coord_counters;

Timing RunWithTtl(Environment* env, VirtualDuration ttl) {
  DeploymentOptions options;
  options.backend = ScfsBackendKind::kCoc;
  auto deployment = Deployment::Create(env, options);
  ScfsOptions fs_options;
  fs_options.mode = ScfsMode::kNonBlocking;
  fs_options.metadata_cache_ttl = ttl;
  auto fs = deployment->Mount("u", fs_options);
  Timing timing;
  if (!fs.ok()) {
    return timing;
  }
  FuseSim fuse(env, fs->get());
  timing.create_s =
      MicroCreateFiles(env, &fuse, kCreateCount, kFileSize).seconds;
  timing.copy_s = MicroCopyFiles(env, &fuse, kCopyCount, kFileSize).seconds;
  (*fs)->DrainBackground();
  (void)(*fs)->Unmount();
  AccumulateCoordCounters(deployment.get(), &g_coord_counters);
  return timing;
}

Timing RunWithSharing(Environment* env, int shared_percent) {
  DeploymentOptions options;
  options.backend = ScfsBackendKind::kCoc;
  auto deployment = Deployment::Create(env, options);
  // A peer user must exist (and be registered) to share with.
  auto peer = deployment->Mount("peer", ScfsOptions{});
  ScfsOptions fs_options;
  fs_options.mode = ScfsMode::kNonBlocking;
  fs_options.use_pns = true;
  auto fs = deployment->Mount("u", fs_options);
  Timing timing;
  if (!fs.ok() || !peer.ok()) {
    return timing;
  }
  FuseSim fuse(env, fs->get());
  Bytes payload(kFileSize, 1);

  // Create phase: every shared file costs coordination-service accesses
  // (tuple creation via promotion); private files stay in the local PNS.
  (void)fuse.Mkdir("/cr");
  Environment::ResetThreadCharged();
  for (int i = 0; i < kCreateCount; ++i) {
    std::string path = "/cr/f" + std::to_string(i);
    if (!fuse.WriteFile(path, payload).ok()) {
      return timing;
    }
    if (i * 100 < shared_percent * kCreateCount) {
      (void)(*fs)->SetFacl(path, "peer", true, false);
    }
  }
  timing.create_s = ToSeconds(Environment::ThreadCharged());

  // Copy phase over a pre-shared population.
  (void)fuse.Mkdir("/cpsrc");
  (void)fuse.Mkdir("/cpdst");
  for (int i = 0; i < kCopyCount; ++i) {
    std::string path = "/cpsrc/f" + std::to_string(i);
    if (!fuse.WriteFile(path, payload).ok()) {
      return timing;
    }
    if (i * 100 < shared_percent * kCopyCount) {
      (void)(*fs)->SetFacl(path, "peer", true, false);
    }
  }
  Environment::ResetThreadCharged();
  for (int i = 0; i < kCopyCount; ++i) {
    auto data = fuse.ReadFile("/cpsrc/f" + std::to_string(i));
    std::string dst = "/cpdst/f" + std::to_string(i);
    if (!data.ok() || !fuse.WriteFile(dst, *data).ok()) {
      return timing;
    }
    if (i * 100 < shared_percent * kCopyCount) {
      (void)(*fs)->SetFacl(dst, "peer", true, false);
    }
  }
  timing.copy_s = ToSeconds(Environment::ThreadCharged());
  (*fs)->DrainBackground();
  (void)(*fs)->Unmount();
  (void)(*peer)->Unmount();
  AccumulateCoordCounters(deployment.get(), &g_coord_counters);
  return timing;
}

void Run() {
  auto env = Environment::Scaled(BenchTimeScale());

  PrintHeader("Figure 10(a): metadata cache expiration time (SCFS-CoC-NB)");
  std::vector<int> widths = {18, 14, 14};
  PrintRow({"expiration(ms)", "create(s)", "copy(s)"}, widths);
  for (VirtualDuration ttl : {VirtualDuration{0}, FromMillis(250),
                              FromMillis(500)}) {
    Timing timing = RunWithTtl(env.get(), ttl);
    PrintRow({std::to_string(ttl / kMillisecond),
              FormatSeconds(timing.create_s), FormatSeconds(timing.copy_s)},
             widths);
  }

  PrintHeader("Figure 10(b): private name spaces vs sharing % (SCFS-CoC-NB)");
  PrintRow({"shared(%)", "create(s)", "copy(s)"}, widths);
  for (int percent : {0, 25, 50, 75, 100}) {
    Timing timing = RunWithSharing(env.get(), percent);
    PrintRow({std::to_string(percent), FormatSeconds(timing.create_s),
              FormatSeconds(timing.copy_s)},
             widths);
  }
  std::printf(
      "\nPaper shape check: expiration 0 severely degrades both workloads,\n"
      "with little gain beyond 250-500ms; with PNSs, latency falls steadily\n"
      "as the shared fraction drops (~2.5-3.5x faster at 25%% sharing).\n");
  PrintCoordCounters("Coordination counters", g_coord_counters);
}

}  // namespace
}  // namespace scfs

int main() {
  scfs::Run();
  return 0;
}
