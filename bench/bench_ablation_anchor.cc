// Ablation A1: what the consistency anchor buys (DESIGN.md).
//
// Two designs over the same eventually-consistent cloud:
//   naive     one mutable object per file, read with plain GET — what you get
//             without SCFS's composite construction;
//   anchored  Figure 3: immutable id|hash versions + the hash anchored in the
//             coordination service, reads loop until visible.
//
// We measure the stale-read rate immediately after an overwrite, and the
// read latency each design pays, across consistency-window sizes.

#include "bench/harness.h"
#include "src/cloud/simulated_cloud.h"
#include "src/coord/local_coordination.h"
#include "src/scfs/consistency_anchor.h"

namespace scfs {
namespace {

constexpr int kTrials = 40;

struct AblationResult {
  double naive_stale_pct = 0;
  double anchored_stale_pct = 0;
  double naive_read_ms = 0;
  double anchored_read_ms = 0;
};

AblationResult RunWindow(Environment* env, VirtualDuration window) {
  CloudProfile profile;
  profile.name = "ec-cloud";
  profile.read_latency = LatencyModel::Fixed(FromMillis(30));
  profile.write_latency = LatencyModel::Fixed(FromMillis(40));
  profile.consistency_window_base = window;
  profile.consistency_window_jitter = window / 2;
  SimulatedCloud cloud(profile, env, static_cast<uint64_t>(window) + 5);
  CloudCredentials creds{"u"};

  LocalCoordination coord(env, LatencyModel::Fixed(FromMillis(5)));
  SingleCloudBackend backend(&cloud, creds);
  AnchorOptions anchor_options;
  anchor_options.retry_delay = FromMillis(25);
  AnchoredStorage anchored(env, &coord, "u", &backend, anchor_options);

  AblationResult result;
  Rng rng(static_cast<uint64_t>(window));
  int naive_stale = 0;
  int anchored_stale = 0;
  double naive_ms = 0;
  double anchored_ms = 0;

  for (int trial = 0; trial < kTrials; ++trial) {
    Bytes old_value = rng.RandomBytes(512);
    Bytes new_value = rng.RandomBytes(512);
    const std::string naive_key = "naive-" + std::to_string(trial);
    const std::string anchored_id = "anch-" + std::to_string(trial);

    // Naive design: overwrite, then read back immediately (the race every
    // sharing workload hits).
    (void)cloud.Put(creds, naive_key, old_value);
    env->Sleep(2 * window + kSecond);
    (void)cloud.Put(creds, naive_key, new_value);
    Environment::ResetThreadCharged();
    auto naive_read = cloud.Get(creds, naive_key);
    naive_ms += ToSeconds(Environment::ThreadCharged()) * 1000;
    if (!naive_read.ok() || *naive_read != new_value) {
      ++naive_stale;
    }

    // Anchored design (Figure 3), same race.
    (void)anchored.Write(anchored_id, old_value);
    env->Sleep(2 * window + kSecond);
    (void)anchored.Write(anchored_id, new_value);
    Environment::ResetThreadCharged();
    auto anchored_read = anchored.Read(anchored_id);
    anchored_ms += ToSeconds(Environment::ThreadCharged()) * 1000;
    if (!anchored_read.ok() || *anchored_read != new_value) {
      ++anchored_stale;
    }
  }
  result.naive_stale_pct = 100.0 * naive_stale / kTrials;
  result.anchored_stale_pct = 100.0 * anchored_stale / kTrials;
  result.naive_read_ms = naive_ms / kTrials;
  result.anchored_read_ms = anchored_ms / kTrials;
  return result;
}

void Run() {
  auto env = Environment::Scaled(BenchTimeScale());
  PrintHeader("Ablation A1: consistency anchor vs plain eventual reads");
  std::vector<int> widths = {14, 14, 16, 16, 18};
  PrintRow({"window(ms)", "naive stale%", "anchored stale%", "naive read(ms)",
            "anchored read(ms)"},
           widths);
  for (VirtualDuration window :
       {FromMillis(250), FromMillis(1000), FromMillis(4000)}) {
    auto result = RunWindow(env.get(), window);
    char c1[16], c2[16], c3[16], c4[16];
    std::snprintf(c1, sizeof(c1), "%.0f", result.naive_stale_pct);
    std::snprintf(c2, sizeof(c2), "%.0f", result.anchored_stale_pct);
    std::snprintf(c3, sizeof(c3), "%.1f", result.naive_read_ms);
    std::snprintf(c4, sizeof(c4), "%.1f", result.anchored_read_ms);
    PrintRow({std::to_string(window / kMillisecond), c1, c2, c3, c4}, widths);
  }
  std::printf(
      "\nExpected: the naive design returns stale data at a high rate that\n"
      "grows with the window; the anchored design never does, paying one\n"
      "coordination access plus (only when racing) bounded retries.\n");
}

}  // namespace
}  // namespace scfs

int main() {
  scfs::Run();
  return 0;
}
