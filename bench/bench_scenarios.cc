// bench_scenarios: open-loop personality sweeps against a deployed SCFS
// instance (the scenario engine, bench/scenario/README.md).
//
// For each personality the bench sweeps offered load over a small rate
// ladder, reporting per rate point the achieved throughput and the
// p50/p90/p99/p99.9 tail measured from *scheduled arrival* (coordinated
// omission included by construction), plus coordination-plane work per
// successful op. The knee — the largest offered rate still served at
// >= 90% — and the saturation throughput go to BENCH_scenarios.json.
//
// The Zipfian skew experiment runs the same append-heavy personality twice
// against a capacity-bound partitioned coordination plane — once uniform
// across partitions, once Zipf(theta=1.5) ranked by partition — and
// reports the p99 inflation the hot partition causes.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/scenario/client_fleet.h"
#include "bench/scenario/personality.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

struct Options {
  bool quick = false;
  std::string json_path = "BENCH_scenarios.json";
  std::vector<std::string> personalities;  // empty = all five
  std::vector<std::string> sets;           // key=value overrides
  std::string spec_file;                   // extra custom personality
  uint64_t clients_override = 0;
  unsigned workers = 64;
  unsigned mounts = 4;
  unsigned partitions = 4;
  bool skew_demo = true;
  bool lease_demo = true;
};

// Coarser than every other bench (1 virtual second = 0.2 real seconds):
// the fleet executes thousands of crypto-bearing ops per virtual second,
// and the host must have enough real time per virtual second to run that
// compute or the measured window stretches and latencies absorb host
// scheduling, not modelled, delay.
double ScenarioTimeScale() { return BenchTimeScale(0.2); }

struct PersonalityPlan {
  const char* name;
  uint64_t clients;
  std::vector<double> rates;
};

// Client populations are ids (memory is O(ops issued)), so the webserver
// runs its full million simulated clients even in --quick.
const PersonalityPlan kPlans[] = {
    {"webserver", 1000000, {100, 200, 400, 800}},
    {"varmail", 100000, {50, 100, 200, 400}},
    {"fileserver", 100000, {50, 100, 200, 400}},
    {"oltp", 200000, {100, 200, 400, 800}},
    {"videoserver", 100000, {25, 50, 100, 200}},
};

std::vector<FileSystem*> MountAgents(
    Deployment* deployment, unsigned count,
    std::vector<std::unique_ptr<ScfsFileSystem>>* owned) {
  std::vector<FileSystem*> mounts;
  for (unsigned i = 0; i < count; ++i) {
    // The paper's default operating mode: close returns at durability level
    // 1 (local disk) and the upload -> publish -> unlock chain proceeds in
    // background through the agent's bounded uploader pipeline.
    ScfsOptions options;
    options.mode = ScfsMode::kNonBlocking;
    auto fs = deployment->Mount("bench", options);
    if (!fs.ok()) {
      std::fprintf(stderr, "mount failed: %s\n",
                   fs.status().ToString().c_str());
      std::exit(1);
    }
    mounts.push_back(fs->get());
    owned->push_back(std::move(*fs));
  }
  return mounts;
}

Status ApplySets(PersonalitySpec* spec, const Options& options) {
  for (const std::string& set : options.sets) {
    RETURN_IF_ERROR(ApplyPersonalityOverride(spec, set));
  }
  return OkStatus();
}

void AddPointJson(BenchJsonWriter* json, const std::string& prefix,
                  const FleetResult& point) {
  json->Add(prefix + "_achieved_ops_s", point.achieved_ops_per_s, "ops/s");
  json->Add(prefix + "_p50_ms", point.latency.PercentileMs(50), "ms");
  json->Add(prefix + "_p90_ms", point.latency.PercentileMs(90), "ms");
  json->Add(prefix + "_p99_ms", point.latency.PercentileMs(99), "ms");
  json->Add(prefix + "_p999_ms", point.latency.PercentileMs(99.9), "ms");
  json->Add(prefix + "_errors", static_cast<double>(point.errors), "ops");
  json->Add(prefix + "_dropped", static_cast<double>(point.dropped), "ops");
  json->Add(prefix + "_coord_msgs_per_op", point.coord_msgs_per_op, "msgs");
  json->Add(prefix + "_ordered_per_op", point.coord_ordered_per_op, "cmds");
  json->Add(prefix + "_fast_reads_per_op", point.coord_fast_reads_per_op,
            "reads");
  for (size_t i = 0; i < kScenarioOpCount; ++i) {
    if (point.per_op_latency[i].count() > 0) {
      json->Add(prefix + "_op_" + ScenarioOpName(static_cast<ScenarioOp>(i)) +
                    "_p99_ms",
                point.per_op_latency[i].PercentileMs(99), "ms");
    }
  }
}

void RunPersonality(Environment* env, const Options& options,
                    const PersonalitySpec& base_spec, uint64_t clients,
                    std::vector<double> rates, BenchJsonWriter* json) {
  PersonalitySpec spec = base_spec;
  if (options.quick) {
    // Smoke scale: smaller fileset (setup dominates CI time), fewer rates.
    if (spec.fileset_files > 256) {
      spec.fileset_files = 256;
    }
    if (rates.size() > 2) {
      rates = {rates[0], rates[2]};
    }
  }
  if (options.clients_override > 0) {
    clients = options.clients_override;
  }

  DeploymentOptions dopts;
  dopts.backend = ScfsBackendKind::kCoc;
  dopts.coord_partitions = options.partitions;
  auto deployment = Deployment::Create(env, dopts);
  std::vector<std::unique_ptr<ScfsFileSystem>> owned;
  std::vector<FileSystem*> mounts =
      MountAgents(deployment.get(), options.mounts, &owned);

  ClientFleet fleet(env, spec, mounts, deployment.get());
  Status setup = fleet.Setup();
  if (!setup.ok()) {
    std::fprintf(stderr, "%s: setup failed: %s\n", spec.name.c_str(),
                 setup.ToString().c_str());
    std::exit(1);
  }

  FleetConfig config;
  config.clients = clients;
  config.workers = options.workers;
  config.duration = (options.quick ? 4 : 8) * kSecond;
  config.drain_grace = (options.quick ? 2 : 4) * kSecond;

  PrintHeader("Scenario: " + spec.name + " (" + std::to_string(clients) +
              " clients, open-loop)");
  std::vector<int> widths = {12, 12, 9, 9, 9, 9, 9, 9, 9, 9};
  PrintRow({"offered/s", "achieved/s", "p50 ms", "p90 ms", "p99 ms",
            "p99.9 ms", "issued", "errors", "dropped", "dur s"},
           widths);
  RateSweepResult sweep = RunRateSweep(&fleet, config, rates);
  for (const FleetResult& point : sweep.points) {
    PrintRow({FormatSeconds(point.offered_ops_per_s),
              FormatSeconds(point.achieved_ops_per_s),
              FormatSeconds(point.latency.PercentileMs(50)),
              FormatSeconds(point.latency.PercentileMs(90)),
              FormatSeconds(point.latency.PercentileMs(99)),
              FormatSeconds(point.latency.PercentileMs(99.9)),
              std::to_string(point.issued), std::to_string(point.errors),
              std::to_string(point.dropped),
              FormatSeconds(point.duration_s)},
             widths);
  }

  // Report tail latency at the knee point: the highest rate the deployment
  // still served, i.e. latency of a healthy system near capacity. If every
  // point saturated, fall back to the first.
  const FleetResult* knee_point = &sweep.points.front();
  for (const FleetResult& point : sweep.points) {
    if (point.offered_ops_per_s <= sweep.knee_offered_ops_s) {
      knee_point = &point;
    }
  }
  std::printf(
      "  knee %.0f ops/s offered, saturation %.0f ops/s achieved, "
      "%.1f coord msgs/op (%.2f ordered, %.2f fast reads), "
      "%llu clients touched\n",
      sweep.knee_offered_ops_s, sweep.saturation_ops_s,
      knee_point->coord_msgs_per_op, knee_point->coord_ordered_per_op,
      knee_point->coord_fast_reads_per_op,
      static_cast<unsigned long long>(knee_point->touched_clients));

  const std::string prefix = "scenario_" + spec.name;
  json->Add(prefix + "_clients", static_cast<double>(clients), "clients");
  json->Add(prefix + "_knee_offered_ops_s", sweep.knee_offered_ops_s, "ops/s");
  json->Add(prefix + "_saturation_ops_s", sweep.saturation_ops_s, "ops/s");
  AddPointJson(json, prefix, *knee_point);
}

// The hot-partition experiment: an append-heavy personality over a fileset
// whose metadata+lock keys are co-located per partition, against a
// coordination plane with a deliberately bounded ordering pipeline. Run
// uniform (theta 0) and skewed (theta 1.5) at the same offered rate; the
// skewed run concentrates ordered traffic on partition 0 past its capacity
// while the uniform run stays under it.
void RunSkewDemo(const Options& options, BenchJsonWriter* json) {
  // The demo gates CI on a p99 *ratio* between two variants, so it runs on
  // its own clock, 5x slower than the sweeps: modelled coordination delay
  // (150 ms links) must dominate host-CPU scheduling noise for the ratio
  // to be stable on small runners.
  auto env_owner = Environment::Scaled(5 * ScenarioTimeScale());
  Environment* env = env_owner.get();
  PersonalitySpec spec;
  spec.name = "zipfdemo";
  spec.mix[static_cast<size_t>(ScenarioOp::kWholeFileRead)] = 0.5;
  spec.mix[static_cast<size_t>(ScenarioOp::kAppend)] = 0.5;
  spec.appends_to_fileset = true;
  spec.partition_skew = true;
  spec.fileset_files = options.quick ? 200 : 400;
  spec.file_size = 8 * 1024;
  spec.append_size = 4 * 1024;

  PrintHeader("Scenario: Zipfian partition skew (capacity-bound pipeline)");
  std::vector<int> widths = {14, 14, 10, 10, 12, 10, 10, 10, 10};
  PrintRow({"variant", "achieved/s", "p50 ms", "p99 ms", "hot share",
            "backlog", "issued", "errors", "dur s"},
           widths);

  struct Variant {
    const char* key;
    double theta;
  };
  double p99[2] = {0, 0};
  for (const Variant& variant :
       {Variant{"uniform", 0.0}, Variant{"skewed", 1.5}}) {
    DeploymentOptions dopts;
    dopts.backend = ScfsBackendKind::kCoc;
    dopts.coord_partitions = options.partitions;
    // Finite per-partition ordering capacity to push against (see
    // DeploymentOptions): one consensus instance in flight, four requests
    // per batch, fixed 75 ms replica links — a hard ceiling of
    // ~4/0.15 s ≈ 26 ordered commands per second per partition on the
    // virtual clock, independent of host CPU.
    dopts.coord_max_inflight_instances = 1;
    dopts.coord_max_batch = 4;
    dopts.coord_replica_link_one_way = 75 * kMillisecond;
    auto deployment = Deployment::Create(env, dopts);
    std::vector<std::unique_ptr<ScfsFileSystem>> owned;
    std::vector<FileSystem*> mounts =
        MountAgents(deployment.get(), options.mounts, &owned);

    PersonalitySpec variant_spec = spec;
    variant_spec.zipf_theta = variant.theta;
    ClientFleet fleet(env, variant_spec, mounts, deployment.get());
    Status setup = fleet.Setup();
    if (!setup.ok()) {
      std::fprintf(stderr, "zipf demo setup failed: %s\n",
                   setup.ToString().c_str());
      std::exit(1);
    }

    FleetConfig config;
    config.clients = 100000;
    config.workers = options.workers;
    // Half of this is appends, each costing ~3 ordered commands (lock,
    // publish, unlock) → ~60 ordered/s aggregate. Uniform spreads that
    // ~15/s per partition, under the ~24/s pipeline ceiling; Zipf(1.5)
    // concentrates ~55% of it (~33/s) on partition 0, past the ceiling,
    // so hot-partition queueing shows up in the tail.
    config.offered_ops_per_s = 40;
    config.duration = (options.quick ? 6 : 10) * kSecond;
    config.drain_grace = (options.quick ? 3 : 5) * kSecond;
    FleetResult result = fleet.Run(config);

    PrintRow({variant.key, FormatSeconds(result.achieved_ops_per_s),
              FormatSeconds(result.latency.PercentileMs(50)),
              FormatSeconds(result.latency.PercentileMs(99)),
              FormatSeconds(result.hot_partition_share),
              std::to_string(result.max_backlog),
              std::to_string(result.issued), std::to_string(result.errors),
              FormatSeconds(result.duration_s)},
             widths);
    const std::string prefix = std::string("scenario_zipf_") + variant.key;
    json->Add(prefix + "_p99_ms", result.latency.PercentileMs(99), "ms");
    json->Add(prefix + "_hot_share", result.hot_partition_share, "share");
    p99[variant.theta > 0 ? 1 : 0] = result.latency.PercentileMs(99);
  }
  const double inflation = p99[0] > 0 ? p99[1] / p99[0] : 0;
  json->Add("scenario_zipf_p99_inflation", inflation, "x");
  std::printf("  p99 inflation (skewed/uniform): %.2fx\n", inflation);
}

// The lease demo: the webserver personality (91% whole-file reads over a
// Zipf fileset that is never mutated, 9% log appends) twice at the same
// offered rate — once with metadata leases off, once with a 2 s lease TTL.
// With leases on, clients answer the read path's metadata lookups from a
// delegated cache (zero coordination messages) and lingering write locks
// collapse the append's lock/unlock rounds, so coordination messages per
// successful op must drop by the ISSUE's >= 5x target (gated in
// tools/check_bench_scenarios.py).
void RunLeaseDemo(const Options& options, BenchJsonWriter* json) {
  auto env_owner = Environment::Scaled(ScenarioTimeScale());
  Environment* env = env_owner.get();
  auto base = BuiltinPersonality("webserver");
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    std::exit(1);
  }
  PersonalitySpec spec = *base;
  spec.name = "webserver_lease";
  if (options.quick && spec.fileset_files > 256) {
    spec.fileset_files = 256;
  }

  PrintHeader("Scenario: webserver with lease-delegated metadata caching");
  std::vector<int> widths = {10, 12, 10, 10, 10, 11, 10, 10, 10, 10};
  PrintRow({"leases", "achieved/s", "p50 ms", "p99 ms", "msgs/op",
            "ordered/op", "fast/op", "hits/op", "grants", "revokes"},
           widths);

  struct Variant {
    const char* key;
    VirtualDuration ttl;
  };
  double msgs_per_op[2] = {0, 0};
  // TTL well past the run duration: the webserver fileset is read-only once
  // set up, so the interesting regime is long-lived leases (renewal cost is
  // covered by ExpiredLeaseRegrants in lease_test.cc and the property test).
  for (const Variant& variant :
       {Variant{"off", 0}, Variant{"on", 30 * kSecond}}) {
    DeploymentOptions dopts;
    dopts.backend = ScfsBackendKind::kCoc;
    dopts.coord_partitions = options.partitions;
    dopts.lease_ttl = variant.ttl;
    auto deployment = Deployment::Create(env, dopts);
    std::vector<std::unique_ptr<ScfsFileSystem>> owned;
    std::vector<FileSystem*> mounts =
        MountAgents(deployment.get(), options.mounts, &owned);

    ClientFleet fleet(env, spec, mounts, deployment.get());
    Status setup = fleet.Setup();
    if (!setup.ok()) {
      std::fprintf(stderr, "lease demo setup failed: %s\n",
                   setup.ToString().c_str());
      std::exit(1);
    }
    // Filebench-style settle between fileset creation and measurement: the
    // setup write burst leaves the fileset prefix in post-revocation lease
    // holdoff; let it decay so the measured window is the read-mostly steady
    // state. Both variants settle identically.
    env->Sleep(5 * kSecond);

    FleetConfig config;
    config.clients = 100000;
    config.workers = options.workers;
    config.offered_ops_per_s = 200;
    config.duration = (options.quick ? 4 : 8) * kSecond;
    config.drain_grace = (options.quick ? 2 : 4) * kSecond;
    // Prime caches, leases and the per-worker append logs outside the
    // measured window (both variants warm identically): the demo measures
    // steady-state coordination cost per op, not first-touch cold misses.
    config.warmup_reads_per_mount = 4;
    FleetResult result = fleet.Run(config);

    PrintRow({variant.key, FormatSeconds(result.achieved_ops_per_s),
              FormatSeconds(result.latency.PercentileMs(50)),
              FormatSeconds(result.latency.PercentileMs(99)),
              FormatSeconds(result.coord_msgs_per_op),
              FormatSeconds(result.coord_ordered_per_op),
              FormatSeconds(result.coord_fast_reads_per_op),
              FormatSeconds(result.lease_hit_share),
              std::to_string(result.lease.grants),
              std::to_string(result.lease.revocations)},
             widths);

    const std::string prefix =
        std::string("scenario_webserver_lease_") + variant.key;
    json->Add(prefix + "_msgs_per_op", result.coord_msgs_per_op, "msgs");
    json->Add(prefix + "_ordered_per_op", result.coord_ordered_per_op, "cmds");
    json->Add(prefix + "_fast_reads_per_op", result.coord_fast_reads_per_op,
              "reads");
    json->Add(prefix + "_p99_ms", result.latency.PercentileMs(99), "ms");
    json->Add(prefix + "_errors", static_cast<double>(result.errors), "ops");
    if (variant.ttl > 0) {
      json->Add(prefix + "_grants", static_cast<double>(result.lease.grants),
                "grants");
      json->Add(prefix + "_revocations",
                static_cast<double>(result.lease.revocations), "leases");
      json->Add(prefix + "_notifications",
                static_cast<double>(result.lease.notifications), "calls");
      json->Add(prefix + "_local_hits",
                static_cast<double>(result.lease.local_hits), "reads");
      json->Add(prefix + "_linger_handoffs",
                static_cast<double>(result.lease.linger_handoffs), "locks");
      json->Add(prefix + "_hit_share", result.lease_hit_share, "share");
    }
    msgs_per_op[variant.ttl > 0 ? 1 : 0] = result.coord_msgs_per_op;
  }
  const double ratio =
      msgs_per_op[1] > 0 ? msgs_per_op[0] / msgs_per_op[1] : 0;
  json->Add("scenario_webserver_lease_msgs_ratio", ratio, "x");
  std::printf("  coord msgs/op reduction (off/on): %.1fx\n", ratio);
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--json") {
      options.json_path = next();
    } else if (arg == "--personality") {
      std::stringstream list(next());
      std::string name;
      while (std::getline(list, name, ',')) {
        if (!name.empty()) {
          options.personalities.push_back(name);
        }
      }
    } else if (arg == "--set") {
      options.sets.push_back(next());
    } else if (arg == "--spec") {
      options.spec_file = next();
    } else if (arg == "--clients") {
      options.clients_override = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--workers") {
      options.workers = static_cast<unsigned>(std::atoi(next().c_str()));
    } else if (arg == "--partitions") {
      options.partitions = static_cast<unsigned>(std::atoi(next().c_str()));
    } else if (arg == "--no-skew-demo") {
      options.skew_demo = false;
    } else if (arg == "--no-lease-demo") {
      options.lease_demo = false;
    } else {
      std::fprintf(
          stderr,
          "usage: bench_scenarios [--quick] [--json PATH]\n"
          "  [--personality a,b,...] [--set key=value]... [--spec FILE]\n"
          "  [--clients N] [--workers N] [--partitions N] [--no-skew-demo]\n"
          "  [--no-lease-demo]\n");
      return 2;
    }
  }

  auto env = Environment::Scaled(ScenarioTimeScale());
  BenchJsonWriter json;

  for (const PersonalityPlan& plan : kPlans) {
    if (!options.personalities.empty() &&
        std::find(options.personalities.begin(), options.personalities.end(),
                  plan.name) == options.personalities.end()) {
      continue;
    }
    auto spec = BuiltinPersonality(plan.name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    Status applied = ApplySets(&*spec, options);
    if (!applied.ok()) {
      std::fprintf(stderr, "%s\n", applied.ToString().c_str());
      return 2;
    }
    RunPersonality(env.get(), options, *spec, plan.clients, plan.rates,
                   &json);
  }

  if (!options.spec_file.empty()) {
    std::ifstream in(options.spec_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", options.spec_file.c_str());
      return 2;
    }
    std::stringstream text;
    text << in.rdbuf();
    PersonalitySpec spec;
    spec.name = "custom";
    Status applied = ApplyPersonalityText(&spec, text.str());
    if (applied.ok()) {
      applied = ApplySets(&spec, options);
    }
    if (!applied.ok()) {
      std::fprintf(stderr, "%s\n", applied.ToString().c_str());
      return 2;
    }
    RunPersonality(env.get(), options, spec, 100000, {50, 100, 200, 400},
                   &json);
  }

  if (options.skew_demo) {
    RunSkewDemo(options, &json);
  }
  if (options.lease_demo) {
    RunLeaseDemo(options, &json);
  }

  if (!json.WriteFile(options.json_path)) {
    return 1;
  }
  std::printf("\nwrote %s\n", options.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace scfs

int main(int argc, char** argv) { return scfs::Main(argc, argv); }
