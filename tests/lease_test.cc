// Lease-delegated metadata caching, end to end over a deployment: grants on
// first read, local serving afterwards, revoke-before-ack on mutation,
// write-hot backoff, natural expiry, lock linger reclaim and the broker
// handoff to a contender. Complemented by the TupleSpace-level lease unit
// tests in coord_test.cc and the randomized interleavings in
// property_test.cc.

#include <gtest/gtest.h>

#include "src/scfs/deployment.h"

namespace scfs {
namespace {

class LeaseTest : public ::testing::Test {
 protected:
  LeaseTest() : env_(Environment::Instant()) {
    DeploymentOptions options;
    options.backend = ScfsBackendKind::kCoc;
    options.zero_latency = true;
    options.lease_ttl = 5 * kSecond;
    deployment_ = Deployment::Create(env_.get(), options);
  }

  std::unique_ptr<ScfsFileSystem> MountAgent(
      const std::string& user, ScfsMode mode = ScfsMode::kBlocking) {
    ScfsOptions options;
    options.mode = mode;
    auto fs = deployment_->Mount(user, options);
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    return std::move(*fs);
  }

  std::unique_ptr<Environment> env_;
  std::unique_ptr<Deployment> deployment_;
};

TEST_F(LeaseTest, RepeatedReadsServedFromOneGrant) {
  // The reader is a second agent: the writer's own files are served by its
  // write-credit pin (it holds the lingering locks), which would mask the
  // lease path this test probes.
  auto writer = MountAgent("alice");
  auto fs = MountAgent("alice");
  ASSERT_TRUE(writer->Mkdir("/d").ok());
  ASSERT_TRUE(writer->WriteFile("/d/a", ToBytes("aa")).ok());
  ASSERT_TRUE(writer->WriteFile("/d/b", ToBytes("bb")).ok());

  // Outlive the metadata TTL cache so the reads below exercise the lease
  // path, not the short-term cache.
  env_->Sleep(kSecond);
  const uint64_t grants_before = fs->metadata_service().lease_grants();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs->Stat("/d/a").ok());
    ASSERT_TRUE(fs->Stat("/d/b").ok());
  }
  EXPECT_GE(fs->metadata_service().lease_grants(), grants_before + 1);
  // First miss grants; everything after is local.
  EXPECT_GE(fs->metadata_service().lease_hits(), 8u);
  EXPECT_GT(deployment_->lease_manager()->counters().local_hits, 0u);
}

TEST_F(LeaseTest, OwnWritesServedByWriteCredit) {
  // The dual of the above: while the writer's lock lingers, its own
  // published metadata is pinned — repeated stats of an own-written file
  // cost zero coordination rounds and zero lease grants.
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->WriteFile("/d/mine", ToBytes("aa")).ok());
  env_->Sleep(kSecond);  // outlive the TTL cache
  const uint64_t grants_before = fs->metadata_service().lease_grants();
  const uint64_t coord_before = fs->metadata_service().coord_reads();
  for (int i = 0; i < 5; ++i) {
    auto stat = fs->Stat("/d/mine");
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat->size, 2u);
  }
  EXPECT_GT(fs->metadata_service().pinned_hits(), 0u);
  EXPECT_EQ(fs->metadata_service().lease_grants(), grants_before);
  EXPECT_EQ(fs->metadata_service().coord_reads(), coord_before);
}

TEST_F(LeaseTest, UnlinkStopsWriteCreditServing) {
  // Unlink takes the write lock and unpins: no window where the remover
  // still answers stats for the deleted file from its pin.
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->WriteFile("/d/gone", ToBytes("aa")).ok());
  env_->Sleep(kSecond);
  ASSERT_TRUE(fs->Stat("/d/gone").ok());  // served by the pin
  ASSERT_TRUE(fs->Unlink("/d/gone").ok());
  EXPECT_EQ(fs->Stat("/d/gone").status().code(), ErrorCode::kNotFound);
}

TEST_F(LeaseTest, LeaseCoversNegativeLookups) {
  auto writer = MountAgent("alice");
  auto fs = MountAgent("alice");
  ASSERT_TRUE(writer->Mkdir("/d").ok());
  ASSERT_TRUE(writer->WriteFile("/d/a", ToBytes("aa")).ok());
  env_->Sleep(kSecond);
  ASSERT_TRUE(fs->Stat("/d/a").ok());  // grants the /d lease
  const uint64_t hits_before = fs->metadata_service().lease_hits();
  // A path covered by the live lease but absent from its snapshot is
  // authoritatively absent — answered locally, no coordination round.
  EXPECT_EQ(fs->Stat("/d/nope").status().code(), ErrorCode::kNotFound);
  EXPECT_GT(fs->metadata_service().lease_hits(), hits_before);
}

TEST_F(LeaseTest, MutationRevokesBeforeAck) {
  auto writer = MountAgent("alice");
  auto reader = MountAgent("alice");
  ASSERT_TRUE(writer->Mkdir("/d").ok());
  ASSERT_TRUE(writer->WriteFile("/d/f", ToBytes("v1")).ok());

  env_->Sleep(kSecond);
  auto before = reader->Stat("/d/f");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size, 2u);

  // The writer's publish commits a revocation in the same ordered slot; by
  // the time WriteFile returns, no agent may serve the old entry.
  ASSERT_TRUE(writer->WriteFile("/d/f", ToBytes("longer")).ok());
  auto after = reader->Stat("/d/f");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size, 6u);
  EXPECT_GT(deployment_->lease_manager()->counters().revocations, 0u);
}

TEST_F(LeaseTest, WriteHotPrefixBacksOff) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->Mkdir("/hot").ok());
  ASSERT_TRUE(fs->WriteFile("/hot/f", ToBytes("x")).ok());
  env_->Sleep(kSecond);
  const uint64_t grants_before = fs->metadata_service().lease_grants();
  // Steady mutations: each write revokes any covering lease; the exponential
  // holdoff must keep the client from re-granting at every miss.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs->Stat("/hot/f").ok());
    ASSERT_TRUE(fs->WriteFile("/hot/f", ToBytes("x")).ok());
  }
  EXPECT_LE(fs->metadata_service().lease_grants() - grants_before, 3u);
}

TEST_F(LeaseTest, ExpiredLeaseRegrants) {
  auto writer = MountAgent("alice");
  auto fs = MountAgent("alice");
  ASSERT_TRUE(writer->Mkdir("/d").ok());
  ASSERT_TRUE(writer->WriteFile("/d/a", ToBytes("aa")).ok());
  env_->Sleep(kSecond);
  ASSERT_TRUE(fs->Stat("/d/a").ok());
  const uint64_t grants_after_first = fs->metadata_service().lease_grants();
  EXPECT_GE(grants_after_first, 1u);

  // Walk past the TTL: the client stops serving from the lease exactly when
  // the replicas stop honouring it, and the next read re-grants.
  env_->Sleep(6 * kSecond);
  ASSERT_TRUE(fs->Stat("/d/a").ok());
  EXPECT_GT(fs->metadata_service().lease_grants(), grants_after_first);
}

TEST_F(LeaseTest, LingerReclaimSkipsLockRounds) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->WriteFile("/f", ToBytes("v1")).ok());
  // The close released the last refcount but the lock lingers; the second
  // write-open reclaims it without a coordination round.
  ASSERT_TRUE(fs->WriteFile("/f", ToBytes("v2")).ok());
  EXPECT_GE(fs->lock_service().reclaim_hits(), 1u);
}

TEST_F(LeaseTest, ContenderClaimsLingeringLock) {
  auto a = MountAgent("alice");
  auto b = MountAgent("alice");
  ASSERT_TRUE(a->WriteFile("/f", ToBytes("from a")).ok());
  // a's lock on /f lingers after its close. b's open would be BUSY against a
  // held lock, but a lingering one is handed over through the broker.
  ASSERT_TRUE(b->WriteFile("/f", ToBytes("from b")).ok());
  EXPECT_GE(deployment_->lease_manager()->counters().linger_handoffs, 1u);
  // Outlive a's short-term metadata cache (nobody held a lease on m:/, so
  // b's publish had nothing to revoke) before checking a sees b's close.
  env_->Sleep(kSecond);
  auto read = a->ReadFile("/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(*read), "from b");
}

TEST_F(LeaseTest, ListDirServedFromLease) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        fs->WriteFile("/d/f" + std::to_string(i), ToBytes("x")).ok());
  }
  env_->Sleep(kSecond);
  auto first = fs->ReadDir("/d");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 4u);
  const uint64_t hits_before = fs->metadata_service().lease_hits();
  auto second = fs->ReadDir("/d");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 4u);
  EXPECT_GT(fs->metadata_service().lease_hits(), hits_before);
}

TEST_F(LeaseTest, GrantsSuspendedFallsBackToAnchoredPath) {
  auto writer = MountAgent("alice");
  auto fs = MountAgent("alice");
  ASSERT_TRUE(writer->Mkdir("/d").ok());
  ASSERT_TRUE(writer->WriteFile("/d/a", ToBytes("aa")).ok());
  env_->Sleep(kSecond);

  // The chaos hook: suspension invalidates all delegated state and blocks
  // new grants; reads still succeed through the anchored path.
  deployment_->lease_manager()->SetGrantsSuspended(true);
  const uint64_t grants_before = fs->metadata_service().lease_grants();
  for (int i = 0; i < 3; ++i) {
    env_->Sleep(2 * kSecond);  // outrun the TTL cache between reads
    ASSERT_TRUE(fs->Stat("/d/a").ok());
  }
  EXPECT_EQ(fs->metadata_service().lease_grants(), grants_before);

  deployment_->lease_manager()->SetGrantsSuspended(false);
  env_->Sleep(2 * kSecond);
  ASSERT_TRUE(fs->Stat("/d/a").ok());
  EXPECT_GT(fs->metadata_service().lease_grants(), grants_before);
}

// The partitioned plane scatters lease grants to every partition and a
// holder serves only while the earliest per-partition slice is live; the
// revocation ride-along works regardless of which partition orders the
// mutation.
TEST(LeasePartitionedTest, GrantServeRevokeAcrossPartitions) {
  auto env = Environment::Scaled(1e-3);
  DeploymentOptions options;
  options.backend = ScfsBackendKind::kCoc;
  options.coord_partitions = 4;
  options.lease_ttl = 5 * kSecond;
  auto deployment = Deployment::Create(env.get(), options);

  ScfsOptions mount_options;
  auto a_mount = deployment->Mount("alice", mount_options);
  ASSERT_TRUE(a_mount.ok()) << a_mount.status().ToString();
  auto b_mount = deployment->Mount("alice", mount_options);
  ASSERT_TRUE(b_mount.ok()) << b_mount.status().ToString();
  auto& a = **a_mount;
  auto& b = **b_mount;

  ASSERT_TRUE(a.Mkdir("/d").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(a.WriteFile("/d/f" + std::to_string(i), ToBytes("v1")).ok());
  }
  env->Sleep(kSecond);
  const uint64_t grants_before = b.metadata_service().lease_grants();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(b.Stat("/d/f" + std::to_string(i)).ok());
  }
  EXPECT_GE(b.metadata_service().lease_grants(), grants_before + 1);
  EXPECT_GT(b.metadata_service().lease_hits(), 0u);

  ASSERT_TRUE(a.WriteFile("/d/f3", ToBytes("longer")).ok());
  auto after = b.Stat("/d/f3");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size, 6u);
}

}  // namespace
}  // namespace scfs
