// Tests for the DepSky cloud-of-clouds protocols: metadata authentication,
// write/read quorums, read-by-hash, confidentiality (no single cloud holds
// the plaintext), corruption/outage/byzantine tolerance, preferred quorums,
// version GC and cross-account sharing grants.

#include <gtest/gtest.h>

#include <memory>

#include "src/cloud/simulated_cloud.h"
#include "src/common/rng.h"
#include "src/crypto/sha1.h"
#include "src/depsky/depsky.h"

namespace scfs {
namespace {

std::string ContentHash(const Bytes& data) {
  return HexEncode(Sha1::Hash(data));
}

class DepSkyTest : public ::testing::Test {
 protected:
  static constexpr unsigned kClouds = 4;

  DepSkyTest() : env_(Environment::Instant()) {
    for (unsigned i = 0; i < kClouds; ++i) {
      CloudProfile profile;  // zero latency, zero window by default
      profile.name = "cloud" + std::to_string(i);
      profile.prices = PriceBook::AmazonS3();
      clouds_.push_back(
          std::make_unique<SimulatedCloud>(profile, env_.get(), 10 + i));
    }
  }

  DepSkyClient MakeClient(const std::string& user,
                          DepSkyMode mode = DepSkyMode::kSecretSharing,
                          bool preferred = true) {
    DepSkyConfig config;
    config.f = 1;
    config.mode = mode;
    config.preferred_quorums = preferred;
    config.auth_key = ToBytes("deployment-auth-key");
    std::vector<DepSkyCloud> set;
    for (auto& cloud : clouds_) {
      set.push_back(DepSkyCloud{cloud.get(),
                                {cloud->provider_name() + ":" + user}});
    }
    return DepSkyClient(env_.get(), std::move(set), config, 1234);
  }

  std::unique_ptr<Environment> env_;
  std::vector<std::unique_ptr<SimulatedCloud>> clouds_;
};

TEST_F(DepSkyTest, MetadataEncodeDecodeRoundTrip) {
  DepSkyMetadata md;
  md.n = 4;
  md.k = 2;
  md.mode = DepSkyMode::kSecretSharing;
  md.owner_ids = {"a", "b", "c", "d"};
  DepSkyVersion v;
  v.version = 3;
  v.content_hash = "abcd";
  v.size = 100;
  v.nonce = Bytes(12, 9);
  v.shard_hashes = {Bytes(32, 1), Bytes(32, 2), Bytes(32, 3), Bytes(32, 4)};
  v.cloud_shard = {0, 1, 2, -1};
  md.versions.push_back(v);
  DepSkyGrant grant;
  grant.cloud_ids = {"u0", "u1", "u2", "u3"};
  grant.read = true;
  md.grants.push_back(grant);

  Bytes key = ToBytes("k");
  auto decoded = DepSkyMetadata::Decode(md.Encode(key), key);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->n, 4u);
  EXPECT_EQ(decoded->owner_ids[2], "c");
  ASSERT_EQ(decoded->versions.size(), 1u);
  EXPECT_EQ(decoded->versions[0].version, 3u);
  EXPECT_EQ(decoded->versions[0].cloud_shard[3], -1);
  ASSERT_EQ(decoded->grants.size(), 1u);
  EXPECT_TRUE(decoded->grants[0].read);
  EXPECT_FALSE(decoded->grants[0].write);
}

TEST_F(DepSkyTest, MetadataAuthenticatorRejectsTampering) {
  DepSkyMetadata md;
  Bytes key = ToBytes("k");
  Bytes encoded = md.Encode(key);
  encoded[6] ^= 0x01;
  EXPECT_EQ(DepSkyMetadata::Decode(encoded, key).status().code(),
            ErrorCode::kCorruption);
  EXPECT_EQ(DepSkyMetadata::Decode(md.Encode(key), ToBytes("other"))
                .status()
                .code(),
            ErrorCode::kCorruption);
}

TEST_F(DepSkyTest, WriteReadRoundTrip) {
  auto client = MakeClient("alice");
  Rng rng(1);
  Bytes data = rng.RandomBytes(10000);
  auto version = client.WriteVersion("file1", ContentHash(data), data);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);

  auto read = client.ReadByHash("file1", ContentHash(data));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);

  auto latest = client.ReadLatest("file1");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, data);
}

TEST_F(DepSkyTest, VersionsAccumulate) {
  auto client = MakeClient("alice");
  Bytes v1 = ToBytes("version one");
  Bytes v2 = ToBytes("version two, longer");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v1), v1).ok());
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v2), v2).ok());

  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->versions.size(), 2u);

  // Both versions remain readable (multi-versioning for error recovery).
  EXPECT_EQ(*client.ReadByHash("f", ContentHash(v1)), v1);
  EXPECT_EQ(*client.ReadByHash("f", ContentHash(v2)), v2);
  EXPECT_EQ(*client.ReadLatest("f"), v2);
}

TEST_F(DepSkyTest, ReadUnknownHashIsNotFound) {
  auto client = MakeClient("alice");
  Bytes data = ToBytes("x");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  EXPECT_EQ(client.ReadByHash("f", "deadbeef").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(client.ReadLatest("missing-unit").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(DepSkyTest, NoSingleCloudHoldsPlaintext) {
  auto client = MakeClient("alice");
  Bytes data(4096, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(client.WriteVersion("secret", ContentHash(data), data).ok());

  // Inspect every object in every cloud: none may contain the plaintext (or
  // even a quarter of it) as a substring.
  std::string needle(data.begin(), data.begin() + data.size() / 4);
  for (auto& cloud : clouds_) {
    auto listed = cloud->List({cloud->provider_name() + ":alice"}, "");
    ASSERT_TRUE(listed.ok());
    for (const auto& info : *listed) {
      auto blob = cloud->PeekLatest(info.key);
      ASSERT_TRUE(blob.ok());
      std::string haystack(blob->begin(), blob->end());
      EXPECT_EQ(haystack.find(needle), std::string::npos)
          << "plaintext leaked to " << cloud->provider_name();
    }
  }
}

TEST_F(DepSkyTest, PreferredQuorumLeavesOneCloudEmpty) {
  auto client = MakeClient("alice");
  Bytes data(10000, 5);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  // Paper: "two clouds store half of the file each while a third receives an
  // extra block ... the fourth cloud is not used".
  unsigned clouds_with_value = 0;
  for (auto& cloud : clouds_) {
    auto listed = cloud->List({cloud->provider_name() + ":alice"}, "du/f/v");
    ASSERT_TRUE(listed.ok());
    clouds_with_value += listed->empty() ? 0 : 1;
  }
  EXPECT_EQ(clouds_with_value, 3u);
}

TEST_F(DepSkyTest, WithoutPreferredQuorumsAllCloudsUsed) {
  auto client = MakeClient("alice", DepSkyMode::kSecretSharing,
                           /*preferred=*/false);
  Bytes data(1000, 5);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  for (auto& cloud : clouds_) {
    auto listed = cloud->List({cloud->provider_name() + ":alice"}, "du/f/v");
    ASSERT_TRUE(listed.ok());
    EXPECT_EQ(listed->size(), 1u);
  }
}

TEST_F(DepSkyTest, StorageOverheadIsAboutOnePointFive) {
  auto client = MakeClient("alice");
  Bytes data(100000, 3);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  uint64_t stored = 0;
  for (auto& cloud : clouds_) {
    stored += cloud->costs().StoredBytes(cloud->provider_name() + ":alice");
  }
  // 3 shards of |F|/2 plus small metadata: ~1.5x (Figure 11c).
  EXPECT_GT(stored, data.size() * 14 / 10);
  EXPECT_LT(stored, data.size() * 17 / 10);
}

TEST_F(DepSkyTest, SurvivesOneCloudOutage) {
  auto client = MakeClient("alice");
  Bytes data = ToBytes("important data");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());

  for (unsigned down = 0; down < kClouds; ++down) {
    clouds_[down]->faults().SetUnavailable(true);
    auto read = client.ReadByHash("f", ContentHash(data));
    ASSERT_TRUE(read.ok()) << "with cloud " << down << " down";
    EXPECT_EQ(*read, data);
    clouds_[down]->faults().SetUnavailable(false);
  }
}

TEST_F(DepSkyTest, WritesSucceedDuringOutage) {
  auto client = MakeClient("alice");
  clouds_[1]->faults().SetUnavailable(true);
  Bytes data = ToBytes("written under failure");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  auto read = client.ReadByHash("f", ContentHash(data));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  clouds_[1]->faults().SetUnavailable(false);
}

TEST_F(DepSkyTest, TwoCloudOutageBlocksWrites) {
  auto client = MakeClient("alice");
  clouds_[0]->faults().SetUnavailable(true);
  clouds_[1]->faults().SetUnavailable(true);
  Bytes data = ToBytes("x");
  EXPECT_EQ(client.WriteVersion("f", ContentHash(data), data).status().code(),
            ErrorCode::kUnavailable);
}

TEST_F(DepSkyTest, DetectsAndRoutesAroundCorruption) {
  auto client = MakeClient("alice");
  Bytes data(5000, 7);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  // Cloud 0 persistently corrupts reads; the shard hash check must reject its
  // shard and the read must recover from the other clouds.
  clouds_[0]->faults().SetCorruptAllReads(true);
  auto read = client.ReadByHash("f", ContentHash(data));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  clouds_[0]->faults().SetCorruptAllReads(false);
}

TEST_F(DepSkyTest, ByzantineMetadataRollbackOutvoted) {
  auto client = MakeClient("alice");
  Bytes v1 = ToBytes("v1");
  Bytes v2 = ToBytes("v2");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v1), v1).ok());
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v2), v2).ok());
  // Cloud 2 serves arbitrarily old (but authentic) state; the metadata read
  // takes the maximum authenticated version from the other clouds.
  clouds_[2]->faults().SetByzantine(true);
  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->versions.size(), 2u);
  EXPECT_EQ(*client.ReadLatest("f"), v2);
  clouds_[2]->faults().SetByzantine(false);
}

TEST_F(DepSkyTest, ReplicationModeRoundTrip) {
  auto client = MakeClient("alice", DepSkyMode::kReplication);
  Bytes data = ToBytes("replicated everywhere");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  auto read = client.ReadLatest("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  // Replication mode survives an outage too.
  clouds_[0]->faults().SetUnavailable(true);
  EXPECT_EQ(*client.ReadLatest("f"), data);
  clouds_[0]->faults().SetUnavailable(false);
}

TEST_F(DepSkyTest, ReplicationStoresFullCopies) {
  auto client = MakeClient("alice", DepSkyMode::kReplication);
  Bytes data(10000, 1);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  uint64_t stored = 0;
  for (auto& cloud : clouds_) {
    stored += cloud->costs().StoredBytes(cloud->provider_name() + ":alice");
  }
  EXPECT_GT(stored, data.size() * 29 / 10);  // ~3 full copies (quorum of 3)
}

TEST_F(DepSkyTest, DeleteVersionReclaimsSpace) {
  auto client = MakeClient("alice");
  Bytes v1(1000, 1);
  Bytes v2(1000, 2);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v1), v1).ok());
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v2), v2).ok());
  ASSERT_TRUE(client.DeleteVersion("f", 1).ok());

  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  ASSERT_EQ(md->versions.size(), 1u);
  EXPECT_EQ(md->versions[0].version, 2u);
  EXPECT_EQ(client.ReadByHash("f", ContentHash(v1)).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(*client.ReadByHash("f", ContentHash(v2)), v2);
}

TEST_F(DepSkyTest, DeleteUnitRemovesEverything) {
  auto client = MakeClient("alice");
  Bytes data = ToBytes("gone soon");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  ASSERT_TRUE(client.DeleteUnit("f").ok());
  EXPECT_EQ(client.ReadMetadata("f").status().code(), ErrorCode::kNotFound);
  for (auto& cloud : clouds_) {
    auto listed = cloud->List({cloud->provider_name() + ":alice"}, "du/f/");
    ASSERT_TRUE(listed.ok());
    EXPECT_TRUE(listed->empty());
  }
}

TEST_F(DepSkyTest, SharingGrantAllowsSecondUser) {
  auto alice = MakeClient("alice");
  auto bob = MakeClient("bob");
  Bytes data = ToBytes("shared document");
  ASSERT_TRUE(alice.WriteVersion("doc", ContentHash(data), data).ok());

  // Before the grant, bob cannot read.
  EXPECT_FALSE(bob.ReadByHash("doc", ContentHash(data)).ok());

  DepSkyGrant grant;
  for (auto& cloud : clouds_) {
    grant.cloud_ids.push_back(cloud->provider_name() + ":bob");
  }
  grant.read = true;
  grant.write = true;
  ASSERT_TRUE(alice.SetGrant("doc", grant).ok());

  auto read = bob.ReadByHash("doc", ContentHash(data));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);

  // Bob writes a new version; alice can read it back (owner ACLs applied).
  Bytes update = ToBytes("bob's update");
  ASSERT_TRUE(bob.WriteVersion("doc", ContentHash(update), update).ok());
  auto alice_read = alice.ReadLatest("doc");
  ASSERT_TRUE(alice_read.ok());
  EXPECT_EQ(*alice_read, update);
}

TEST_F(DepSkyTest, RevokedGrantDeniesAccess) {
  auto alice = MakeClient("alice");
  auto bob = MakeClient("bob");
  Bytes data = ToBytes("was shared");
  ASSERT_TRUE(alice.WriteVersion("doc", ContentHash(data), data).ok());
  DepSkyGrant grant;
  for (auto& cloud : clouds_) {
    grant.cloud_ids.push_back(cloud->provider_name() + ":bob");
  }
  grant.read = true;
  ASSERT_TRUE(alice.SetGrant("doc", grant).ok());
  ASSERT_TRUE(bob.ReadLatest("doc").ok());

  grant.read = false;
  grant.write = false;
  ASSERT_TRUE(alice.SetGrant("doc", grant).ok());
  EXPECT_FALSE(bob.ReadLatest("doc").ok());
}

TEST_F(DepSkyTest, EventualConsistencyNotFoundUntilVisible) {
  // With a consistency window on metadata overwrites, a second version is
  // invisible to readers until the window passes — exactly the situation the
  // SCFS consistency anchor loop handles.
  for (auto& cloud : clouds_) {
    // Rebuild clouds with a window is not possible in place; emulate with a
    // fresh set.
  }
  std::vector<std::unique_ptr<SimulatedCloud>> windowed;
  std::vector<DepSkyCloud> set;
  for (unsigned i = 0; i < kClouds; ++i) {
    CloudProfile profile;
    profile.name = "w" + std::to_string(i);
    profile.consistency_window_base = 5 * kSecond;
    windowed.push_back(
        std::make_unique<SimulatedCloud>(profile, env_.get(), 50 + i));
    set.push_back(DepSkyCloud{windowed.back().get(), {"w:alice"}});
  }
  DepSkyConfig config;
  config.auth_key = ToBytes("k");
  DepSkyClient client(env_.get(), std::move(set), config, 7);

  Bytes v1 = ToBytes("v1");
  Bytes v2 = ToBytes("v2");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v1), v1).ok());
  env_->Sleep(6 * kSecond);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v2), v2).ok());

  // Metadata overwrite still in the window: v2 not found yet.
  EXPECT_EQ(client.ReadByHash("f", ContentHash(v2)).status().code(),
            ErrorCode::kNotFound);
  env_->Sleep(6 * kSecond);
  EXPECT_EQ(*client.ReadByHash("f", ContentHash(v2)), v2);
}

}  // namespace
}  // namespace scfs
