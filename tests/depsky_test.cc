// Tests for the DepSky cloud-of-clouds protocols: metadata authentication,
// write/read quorums, read-by-hash, confidentiality (no single cloud holds
// the plaintext), corruption/outage/byzantine tolerance, preferred quorums,
// version GC and cross-account sharing grants.

#include <gtest/gtest.h>

#include <memory>

#include "src/cloud/simulated_cloud.h"
#include "src/common/rng.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/depsky/depsky.h"

namespace scfs {
namespace {

std::string ContentHash(const Bytes& data) {
  return HexEncode(Sha1::Hash(data));
}

class DepSkyTest : public ::testing::Test {
 protected:
  static constexpr unsigned kClouds = 4;

  DepSkyTest() : env_(Environment::Instant()) {
    for (unsigned i = 0; i < kClouds; ++i) {
      CloudProfile profile;  // zero latency, zero window by default
      profile.name = "cloud" + std::to_string(i);
      profile.prices = PriceBook::AmazonS3();
      clouds_.push_back(
          std::make_unique<SimulatedCloud>(profile, env_.get(), 10 + i));
    }
  }

  DepSkyClient MakeClient(const std::string& user,
                          DepSkyMode mode = DepSkyMode::kSecretSharing,
                          bool preferred = true) {
    DepSkyConfig config;
    config.f = 1;
    config.mode = mode;
    config.preferred_quorums = preferred;
    config.auth_key = ToBytes("deployment-auth-key");
    std::vector<DepSkyCloud> set;
    for (auto& cloud : clouds_) {
      set.push_back(DepSkyCloud{cloud.get(),
                                {cloud->provider_name() + ":" + user}});
    }
    return DepSkyClient(env_.get(), std::move(set), config, 1234);
  }

  // Client with a small stripe geometry so striping tests stay fast; a
  // threshold of 0 disables striping entirely.
  DepSkyClient MakeStripedClient(const std::string& user,
                                 size_t threshold = 1024,
                                 size_t unit_size = 1024,
                                 unsigned inflight = 4) {
    DepSkyConfig config;
    config.f = 1;
    config.auth_key = ToBytes("deployment-auth-key");
    config.stripe_threshold = threshold;
    config.stripe_unit_size = unit_size;
    config.stripe_inflight = inflight;
    std::vector<DepSkyCloud> set;
    for (auto& cloud : clouds_) {
      set.push_back(DepSkyCloud{cloud.get(),
                                {cloud->provider_name() + ":" + user}});
    }
    return DepSkyClient(env_.get(), std::move(set), config, 1234);
  }

  std::unique_ptr<Environment> env_;
  std::vector<std::unique_ptr<SimulatedCloud>> clouds_;
};

TEST_F(DepSkyTest, MetadataEncodeDecodeRoundTrip) {
  DepSkyMetadata md;
  md.n = 4;
  md.k = 2;
  md.mode = DepSkyMode::kSecretSharing;
  md.owner_ids = {"a", "b", "c", "d"};
  DepSkyVersion v;
  v.version = 3;
  v.content_hash = "abcd";
  v.size = 100;
  v.nonce = Bytes(12, 9);
  v.shard_hashes = {Bytes(32, 1), Bytes(32, 2), Bytes(32, 3), Bytes(32, 4)};
  v.cloud_shard = {0, 1, 2, -1};
  md.versions.push_back(v);
  DepSkyGrant grant;
  grant.cloud_ids = {"u0", "u1", "u2", "u3"};
  grant.read = true;
  md.grants.push_back(grant);

  Bytes key = ToBytes("k");
  auto decoded = DepSkyMetadata::Decode(md.Encode(key), key);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->n, 4u);
  EXPECT_EQ(decoded->owner_ids[2], "c");
  ASSERT_EQ(decoded->versions.size(), 1u);
  EXPECT_EQ(decoded->versions[0].version, 3u);
  EXPECT_EQ(decoded->versions[0].cloud_shard[3], -1);
  ASSERT_EQ(decoded->grants.size(), 1u);
  EXPECT_TRUE(decoded->grants[0].read);
  EXPECT_FALSE(decoded->grants[0].write);
}

TEST_F(DepSkyTest, MetadataStripeManifestRoundTrip) {
  DepSkyMetadata md;
  md.n = 4;
  md.k = 2;
  // Version 1 monolithic, version 2 striped: the stripe section must carry
  // only the striped version and leave the monolithic one untouched.
  DepSkyVersion mono;
  mono.version = 1;
  mono.content_hash = "aaaa";
  mono.size = 10;
  mono.shard_hashes = {Bytes(32, 1), Bytes(32, 2), Bytes(32, 3), Bytes(32, 4)};
  mono.cloud_shard = {0, 1, 2, 3};
  md.versions.push_back(mono);
  DepSkyVersion striped;
  striped.version = 2;
  striped.content_hash = "bbbb";
  striped.size = 10 * 1024 * 1024;
  striped.nonce = Bytes(12, 7);
  striped.stripe_unit_size = 4 * 1024 * 1024;
  for (int u = 0; u < 3; ++u) {
    DepSkyStripeUnit unit;
    unit.content_hash = Bytes(32, static_cast<uint8_t>(0x10 + u));
    unit.shard_hashes = {Bytes(32, 5), Bytes(32, 6), Bytes(32, 7),
                         Bytes(32, 8)};
    unit.cloud_shard = {3, 2, 1, -1};
    striped.stripe_units.push_back(unit);
  }
  md.versions.push_back(striped);

  Bytes key = ToBytes("k");
  auto decoded = DepSkyMetadata::Decode(md.Encode(key), key);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->versions.size(), 2u);
  EXPECT_FALSE(decoded->versions[0].striped());
  EXPECT_TRUE(decoded->versions[0].stripe_units.empty());
  const auto& v = decoded->versions[1];
  ASSERT_TRUE(v.striped());
  EXPECT_EQ(v.stripe_unit_size, 4u * 1024 * 1024);
  ASSERT_EQ(v.stripe_units.size(), 3u);
  EXPECT_EQ(v.stripe_units[1].content_hash, Bytes(32, 0x11));
  ASSERT_EQ(v.stripe_units[2].shard_hashes.size(), 4u);
  EXPECT_EQ(v.stripe_units[2].shard_hashes[3], Bytes(32, 8));
  EXPECT_EQ(v.stripe_units[0].cloud_shard,
            (std::vector<int32_t>{3, 2, 1, -1}));
}

TEST_F(DepSkyTest, MetadataWithoutStripesEncodesWithoutStripeSection) {
  // Monolithic-only metadata must serialize byte-identically to the
  // pre-stripe format: the trailing section is appended only when some
  // version is striped, so the encoding of a non-striped record ends right
  // after the grants.
  DepSkyMetadata md;
  md.n = 4;
  md.k = 2;
  DepSkyVersion v;
  v.version = 1;
  v.content_hash = "aaaa";
  v.shard_hashes = {Bytes(32, 1)};
  v.cloud_shard = {0};
  md.versions.push_back(v);
  Bytes key = ToBytes("k");
  Bytes plain = md.Encode(key);

  md.versions[0].stripe_unit_size = 1024;
  md.versions[0].stripe_units.resize(2);
  Bytes with_stripes = md.Encode(key);
  EXPECT_GT(with_stripes.size(), plain.size());

  md.versions[0].stripe_unit_size = 0;
  md.versions[0].stripe_units.clear();
  EXPECT_EQ(md.Encode(key), plain);
}

TEST_F(DepSkyTest, MetadataAuthenticatorRejectsTampering) {
  DepSkyMetadata md;
  Bytes key = ToBytes("k");
  Bytes encoded = md.Encode(key);
  encoded[6] ^= 0x01;
  EXPECT_EQ(DepSkyMetadata::Decode(encoded, key).status().code(),
            ErrorCode::kCorruption);
  EXPECT_EQ(DepSkyMetadata::Decode(md.Encode(key), ToBytes("other"))
                .status()
                .code(),
            ErrorCode::kCorruption);
}

TEST_F(DepSkyTest, WriteReadRoundTrip) {
  auto client = MakeClient("alice");
  Rng rng(1);
  Bytes data = rng.RandomBytes(10000);
  auto version = client.WriteVersion("file1", ContentHash(data), data);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);

  auto read = client.ReadByHash("file1", ContentHash(data));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);

  auto latest = client.ReadLatest("file1");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, data);
}

TEST_F(DepSkyTest, VersionsAccumulate) {
  auto client = MakeClient("alice");
  Bytes v1 = ToBytes("version one");
  Bytes v2 = ToBytes("version two, longer");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v1), v1).ok());
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v2), v2).ok());

  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->versions.size(), 2u);

  // Both versions remain readable (multi-versioning for error recovery).
  EXPECT_EQ(*client.ReadByHash("f", ContentHash(v1)), v1);
  EXPECT_EQ(*client.ReadByHash("f", ContentHash(v2)), v2);
  EXPECT_EQ(*client.ReadLatest("f"), v2);
}

TEST_F(DepSkyTest, ReadUnknownHashIsNotFound) {
  auto client = MakeClient("alice");
  Bytes data = ToBytes("x");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  EXPECT_EQ(client.ReadByHash("f", "deadbeef").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(client.ReadLatest("missing-unit").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(DepSkyTest, NoSingleCloudHoldsPlaintext) {
  auto client = MakeClient("alice");
  Bytes data(4096, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(client.WriteVersion("secret", ContentHash(data), data).ok());

  // Inspect every object in every cloud: none may contain the plaintext (or
  // even a quarter of it) as a substring.
  std::string needle(data.begin(), data.begin() + data.size() / 4);
  for (auto& cloud : clouds_) {
    auto listed = cloud->List({cloud->provider_name() + ":alice"}, "");
    ASSERT_TRUE(listed.ok());
    for (const auto& info : *listed) {
      auto blob = cloud->PeekLatest(info.key);
      ASSERT_TRUE(blob.ok());
      std::string haystack(blob->begin(), blob->end());
      EXPECT_EQ(haystack.find(needle), std::string::npos)
          << "plaintext leaked to " << cloud->provider_name();
    }
  }
}

TEST_F(DepSkyTest, PreferredQuorumLeavesOneCloudEmpty) {
  auto client = MakeClient("alice");
  Bytes data(10000, 5);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  // Paper: "two clouds store half of the file each while a third receives an
  // extra block ... the fourth cloud is not used".
  unsigned clouds_with_value = 0;
  for (auto& cloud : clouds_) {
    auto listed = cloud->List({cloud->provider_name() + ":alice"}, "du/f/v");
    ASSERT_TRUE(listed.ok());
    clouds_with_value += listed->empty() ? 0 : 1;
  }
  EXPECT_EQ(clouds_with_value, 3u);
}

TEST_F(DepSkyTest, WithoutPreferredQuorumsAllCloudsUsed) {
  auto client = MakeClient("alice", DepSkyMode::kSecretSharing,
                           /*preferred=*/false);
  Bytes data(1000, 5);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  for (auto& cloud : clouds_) {
    auto listed = cloud->List({cloud->provider_name() + ":alice"}, "du/f/v");
    ASSERT_TRUE(listed.ok());
    EXPECT_EQ(listed->size(), 1u);
  }
}

TEST_F(DepSkyTest, StorageOverheadIsAboutOnePointFive) {
  auto client = MakeClient("alice");
  Bytes data(100000, 3);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  uint64_t stored = 0;
  for (auto& cloud : clouds_) {
    stored += cloud->costs().StoredBytes(cloud->provider_name() + ":alice");
  }
  // 3 shards of |F|/2 plus small metadata: ~1.5x (Figure 11c).
  EXPECT_GT(stored, data.size() * 14 / 10);
  EXPECT_LT(stored, data.size() * 17 / 10);
}

TEST_F(DepSkyTest, SurvivesOneCloudOutage) {
  auto client = MakeClient("alice");
  Bytes data = ToBytes("important data");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());

  for (unsigned down = 0; down < kClouds; ++down) {
    clouds_[down]->faults().SetUnavailable(true);
    auto read = client.ReadByHash("f", ContentHash(data));
    ASSERT_TRUE(read.ok()) << "with cloud " << down << " down";
    EXPECT_EQ(*read, data);
    clouds_[down]->faults().SetUnavailable(false);
  }
}

TEST_F(DepSkyTest, WritesSucceedDuringOutage) {
  auto client = MakeClient("alice");
  clouds_[1]->faults().SetUnavailable(true);
  Bytes data = ToBytes("written under failure");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  auto read = client.ReadByHash("f", ContentHash(data));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  clouds_[1]->faults().SetUnavailable(false);
}

TEST_F(DepSkyTest, TwoCloudOutageBlocksWrites) {
  auto client = MakeClient("alice");
  clouds_[0]->faults().SetUnavailable(true);
  clouds_[1]->faults().SetUnavailable(true);
  Bytes data = ToBytes("x");
  EXPECT_EQ(client.WriteVersion("f", ContentHash(data), data).status().code(),
            ErrorCode::kUnavailable);
}

TEST_F(DepSkyTest, DetectsAndRoutesAroundCorruption) {
  auto client = MakeClient("alice");
  Bytes data(5000, 7);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  // Cloud 0 persistently corrupts reads; the shard hash check must reject its
  // shard and the read must recover from the other clouds.
  clouds_[0]->faults().SetCorruptAllReads(true);
  auto read = client.ReadByHash("f", ContentHash(data));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  clouds_[0]->faults().SetCorruptAllReads(false);
}

TEST_F(DepSkyTest, ByzantineMetadataRollbackOutvoted) {
  auto client = MakeClient("alice");
  Bytes v1 = ToBytes("v1");
  Bytes v2 = ToBytes("v2");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v1), v1).ok());
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v2), v2).ok());
  // Cloud 2 serves arbitrarily old (but authentic) state; the metadata read
  // takes the maximum authenticated version from the other clouds.
  clouds_[2]->faults().SetByzantine(true);
  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->versions.size(), 2u);
  EXPECT_EQ(*client.ReadLatest("f"), v2);
  clouds_[2]->faults().SetByzantine(false);
}

TEST_F(DepSkyTest, ReplicationModeRoundTrip) {
  auto client = MakeClient("alice", DepSkyMode::kReplication);
  Bytes data = ToBytes("replicated everywhere");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  auto read = client.ReadLatest("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  // Replication mode survives an outage too.
  clouds_[0]->faults().SetUnavailable(true);
  EXPECT_EQ(*client.ReadLatest("f"), data);
  clouds_[0]->faults().SetUnavailable(false);
}

TEST_F(DepSkyTest, ReplicationStoresFullCopies) {
  auto client = MakeClient("alice", DepSkyMode::kReplication);
  Bytes data(10000, 1);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  uint64_t stored = 0;
  for (auto& cloud : clouds_) {
    stored += cloud->costs().StoredBytes(cloud->provider_name() + ":alice");
  }
  EXPECT_GT(stored, data.size() * 29 / 10);  // ~3 full copies (quorum of 3)
}

TEST_F(DepSkyTest, DeleteVersionReclaimsSpace) {
  auto client = MakeClient("alice");
  Bytes v1(1000, 1);
  Bytes v2(1000, 2);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v1), v1).ok());
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v2), v2).ok());
  ASSERT_TRUE(client.DeleteVersion("f", 1).ok());

  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  ASSERT_EQ(md->versions.size(), 1u);
  EXPECT_EQ(md->versions[0].version, 2u);
  EXPECT_EQ(client.ReadByHash("f", ContentHash(v1)).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(*client.ReadByHash("f", ContentHash(v2)), v2);
}

TEST_F(DepSkyTest, DeleteUnitRemovesEverything) {
  auto client = MakeClient("alice");
  Bytes data = ToBytes("gone soon");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  ASSERT_TRUE(client.DeleteUnit("f").ok());
  EXPECT_EQ(client.ReadMetadata("f").status().code(), ErrorCode::kNotFound);
  for (auto& cloud : clouds_) {
    auto listed = cloud->List({cloud->provider_name() + ":alice"}, "du/f/");
    ASSERT_TRUE(listed.ok());
    EXPECT_TRUE(listed->empty());
  }
}

TEST_F(DepSkyTest, SharingGrantAllowsSecondUser) {
  auto alice = MakeClient("alice");
  auto bob = MakeClient("bob");
  Bytes data = ToBytes("shared document");
  ASSERT_TRUE(alice.WriteVersion("doc", ContentHash(data), data).ok());

  // Before the grant, bob cannot read.
  EXPECT_FALSE(bob.ReadByHash("doc", ContentHash(data)).ok());

  DepSkyGrant grant;
  for (auto& cloud : clouds_) {
    grant.cloud_ids.push_back(cloud->provider_name() + ":bob");
  }
  grant.read = true;
  grant.write = true;
  ASSERT_TRUE(alice.SetGrant("doc", grant).ok());

  auto read = bob.ReadByHash("doc", ContentHash(data));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);

  // Bob writes a new version; alice can read it back (owner ACLs applied).
  Bytes update = ToBytes("bob's update");
  ASSERT_TRUE(bob.WriteVersion("doc", ContentHash(update), update).ok());
  auto alice_read = alice.ReadLatest("doc");
  ASSERT_TRUE(alice_read.ok());
  EXPECT_EQ(*alice_read, update);
}

TEST_F(DepSkyTest, RevokedGrantDeniesAccess) {
  auto alice = MakeClient("alice");
  auto bob = MakeClient("bob");
  Bytes data = ToBytes("was shared");
  ASSERT_TRUE(alice.WriteVersion("doc", ContentHash(data), data).ok());
  DepSkyGrant grant;
  for (auto& cloud : clouds_) {
    grant.cloud_ids.push_back(cloud->provider_name() + ":bob");
  }
  grant.read = true;
  ASSERT_TRUE(alice.SetGrant("doc", grant).ok());
  ASSERT_TRUE(bob.ReadLatest("doc").ok());

  grant.read = false;
  grant.write = false;
  ASSERT_TRUE(alice.SetGrant("doc", grant).ok());
  EXPECT_FALSE(bob.ReadLatest("doc").ok());
}

TEST_F(DepSkyTest, EventualConsistencyNotFoundUntilVisible) {
  // With a consistency window on metadata overwrites, a second version is
  // invisible to readers until the window passes — exactly the situation the
  // SCFS consistency anchor loop handles.
  for (auto& cloud : clouds_) {
    // Rebuild clouds with a window is not possible in place; emulate with a
    // fresh set.
  }
  std::vector<std::unique_ptr<SimulatedCloud>> windowed;
  std::vector<DepSkyCloud> set;
  for (unsigned i = 0; i < kClouds; ++i) {
    CloudProfile profile;
    profile.name = "w" + std::to_string(i);
    profile.consistency_window_base = 5 * kSecond;
    windowed.push_back(
        std::make_unique<SimulatedCloud>(profile, env_.get(), 50 + i));
    set.push_back(DepSkyCloud{windowed.back().get(), {"w:alice"}});
  }
  DepSkyConfig config;
  config.auth_key = ToBytes("k");
  DepSkyClient client(env_.get(), std::move(set), config, 7);

  Bytes v1 = ToBytes("v1");
  Bytes v2 = ToBytes("v2");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v1), v1).ok());
  env_->Sleep(6 * kSecond);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v2), v2).ok());

  // Metadata overwrite still in the window: v2 not found yet.
  EXPECT_EQ(client.ReadByHash("f", ContentHash(v2)).status().code(),
            ErrorCode::kNotFound);
  env_->Sleep(6 * kSecond);
  EXPECT_EQ(*client.ReadByHash("f", ContentHash(v2)), v2);
}

// ---------------------------------------------------------------------------
// Striped large-file data plane
// ---------------------------------------------------------------------------

TEST_F(DepSkyTest, StripedWriteReadRoundTrip) {
  auto client = MakeStripedClient("alice");
  Bytes data = Rng(77).RandomBytes(10 * 1024 + 37);  // 11 units, last partial
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());

  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  ASSERT_EQ(md->versions.size(), 1u);
  const DepSkyVersion& v = md->versions.back();
  EXPECT_TRUE(v.striped());
  EXPECT_EQ(v.stripe_unit_size, 1024u);
  ASSERT_EQ(v.stripe_units.size(), 11u);
  // Per-object records live in the stripe units, not the version.
  EXPECT_TRUE(v.shard_hashes.empty());
  EXPECT_TRUE(v.cloud_shard.empty());
  for (const auto& su : v.stripe_units) {
    EXPECT_EQ(su.shard_hashes.size(), kClouds);
    EXPECT_EQ(su.cloud_shard.size(), kClouds);
    EXPECT_EQ(su.content_hash.size(), 32u);
  }
  EXPECT_EQ(*client.ReadByHash("f", ContentHash(data)), data);
  EXPECT_EQ(*client.ReadLatest("f"), data);
}

TEST_F(DepSkyTest, BelowThresholdWritesAreByteIdenticalToUnstripedClient) {
  // Same seed, same data, one client with striping enabled and one with it
  // disabled: a below-threshold write must produce byte-identical stored
  // objects — the feature must not perturb the existing single-object path.
  auto striped = MakeStripedClient("alice", /*threshold=*/1024);
  auto plain = MakeStripedClient("alice", /*threshold=*/0);
  Bytes data = Rng(5).RandomBytes(1000);  // exactly at/below the threshold
  ASSERT_TRUE(striped.WriteVersion("a", ContentHash(data), data).ok());
  ASSERT_TRUE(plain.WriteVersion("b", ContentHash(data), data).ok());

  auto md = striped.ReadMetadata("a");
  ASSERT_TRUE(md.ok());
  EXPECT_FALSE(md->versions.back().striped());

  for (unsigned i = 0; i < kClouds; ++i) {
    auto from_striped =
        clouds_[i]->PeekLatest(DepSkyClient::ValueKey("a", 1));
    auto from_plain = clouds_[i]->PeekLatest(DepSkyClient::ValueKey("b", 1));
    ASSERT_EQ(from_striped.ok(), from_plain.ok()) << "cloud " << i;
    if (from_striped.ok()) {
      EXPECT_EQ(*from_striped, *from_plain) << "cloud " << i;
    }
  }
}

TEST_F(DepSkyTest, StripedReadAtBoundaries) {
  auto client = MakeStripedClient("alice");
  const size_t kUnit = 1024;
  Bytes data = Rng(9).RandomBytes(10 * kUnit + 37);
  const std::string hash = ContentHash(data);
  ASSERT_TRUE(client.WriteVersion("f", hash, data).ok());

  auto slice = [&](uint64_t offset, size_t length) {
    length = std::min<uint64_t>(length, data.size() - offset);
    return Bytes(data.begin() + offset, data.begin() + offset + length);
  };

  // Exactly one full unit.
  EXPECT_EQ(*client.ReadAt("f", hash, kUnit, kUnit), slice(kUnit, kUnit));
  // Start mid-unit.
  EXPECT_EQ(*client.ReadAt("f", hash, 1500, 100), slice(1500, 100));
  // End mid-unit.
  EXPECT_EQ(*client.ReadAt("f", hash, kUnit, 1500), slice(kUnit, 1500));
  // Span several units with ragged edges on both sides.
  EXPECT_EQ(*client.ReadAt("f", hash, 500, 5 * kUnit - 7),
            slice(500, 5 * kUnit - 7));
  // Tail read into the partial last unit, clamped at EOF.
  EXPECT_EQ(*client.ReadAt("f", hash, data.size() - 10, 100),
            slice(data.size() - 10, 100));
  // Whole file.
  EXPECT_EQ(*client.ReadAt("f", hash, 0, data.size()), data);
  // Past EOF / empty.
  EXPECT_TRUE(client.ReadAt("f", hash, data.size() + 5, 10)->empty());
  EXPECT_TRUE(client.ReadAt("f", hash, 0, 0)->empty());
}

TEST_F(DepSkyTest, ReadAtOnMonolithicVersionSlices) {
  auto client = MakeClient("alice");
  Bytes data = Rng(11).RandomBytes(5000);
  const std::string hash = ContentHash(data);
  ASSERT_TRUE(client.WriteVersion("f", hash, data).ok());
  EXPECT_EQ(*client.ReadAt("f", hash, 1234, 600),
            Bytes(data.begin() + 1234, data.begin() + 1234 + 600));
  EXPECT_TRUE(client.ReadAt("f", hash, 9999, 10)->empty());
}

TEST_F(DepSkyTest, StripedUnitsSurviveIndependentShardLoss) {
  // Each stripe unit is an independent erasure group: every unit may lose up
  // to f shards — at a *different* cloud per unit — and the file must still
  // reassemble.
  auto client = MakeStripedClient("alice");
  Bytes data = Rng(13).RandomBytes(8 * 1024);
  const std::string hash = ContentHash(data);
  ASSERT_TRUE(client.WriteVersion("f", hash, data).ok());

  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  const DepSkyVersion& v = md->versions.back();
  ASSERT_TRUE(v.striped());
  for (size_t u = 0; u < v.stripe_units.size(); ++u) {
    // Rotate which holder loses its object from unit to unit.
    std::vector<unsigned> holders;
    for (unsigned c = 0; c < kClouds; ++c) {
      if (v.stripe_units[u].cloud_shard[c] >= 0) {
        holders.push_back(c);
      }
    }
    ASSERT_GE(holders.size(), 3u);
    const unsigned victim = holders[u % holders.size()];
    ASSERT_TRUE(clouds_[victim]
                    ->Delete({clouds_[victim]->provider_name() + ":alice"},
                             DepSkyClient::StripeValueKey("f", v.version, u))
                    .ok());
  }
  EXPECT_EQ(*client.ReadByHash("f", hash), data);
}

// ---------------------------------------------------------------------------
// Scrub & repair
// ---------------------------------------------------------------------------

TEST_F(DepSkyTest, ScrubOnHealthyUnitReportsFullRedundancy) {
  auto client = MakeStripedClient("alice");
  Bytes data = Rng(17).RandomBytes(4 * 1024);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  auto report = client.ScrubUnit("f");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->versions_checked, 1u);
  EXPECT_GT(report->objects_checked, 0u);
  EXPECT_EQ(report->objects_missing, 0u);
  EXPECT_EQ(report->objects_repaired, 0u);
  EXPECT_TRUE(report->fully_redundant);
}

TEST_F(DepSkyTest, ScrubRebuildsLostStripeShardsByteIdentically) {
  auto client = MakeStripedClient("alice");
  Bytes data = Rng(19).RandomBytes(6 * 1024);
  const std::string hash = ContentHash(data);
  ASSERT_TRUE(client.WriteVersion("f", hash, data).ok());

  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  const DepSkyVersion v = md->versions.back();
  ASSERT_TRUE(v.striped());

  // Lose one stored object per unit (rotating holders), then scrub.
  std::vector<std::pair<unsigned, std::string>> lost;  // (cloud, key)
  for (size_t u = 0; u < v.stripe_units.size(); ++u) {
    std::vector<unsigned> holders;
    for (unsigned c = 0; c < kClouds; ++c) {
      if (v.stripe_units[u].cloud_shard[c] >= 0) {
        holders.push_back(c);
      }
    }
    const unsigned victim = holders[u % holders.size()];
    const std::string key = DepSkyClient::StripeValueKey("f", v.version, u);
    ASSERT_TRUE(clouds_[victim]
                    ->Delete({clouds_[victim]->provider_name() + ":alice"}, key)
                    .ok());
    lost.emplace_back(victim, key);
  }

  auto report = client.ScrubUnit("f");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->objects_missing, v.stripe_units.size());
  EXPECT_EQ(report->objects_repaired, v.stripe_units.size());
  EXPECT_EQ(report->objects_relocated, 0u);
  EXPECT_EQ(report->repair_failures, 0u);

  // The rebuilt objects hash-match the manifest (byte-identical repair), so
  // the metadata needed no update and a second pass finds nothing missing.
  for (size_t u = 0; u < lost.size(); ++u) {
    auto restored = clouds_[lost[u].first]->PeekLatest(lost[u].second);
    ASSERT_TRUE(restored.ok()) << "unit " << u;
    const unsigned shard = static_cast<unsigned>(
        v.stripe_units[u].cloud_shard[lost[u].first]);
    EXPECT_EQ(Sha256::Hash(*restored), v.stripe_units[u].shard_hashes[shard]);
  }
  auto second = client.ScrubUnit("f");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->objects_missing, 0u);
  EXPECT_TRUE(second->fully_redundant);
  EXPECT_EQ(*client.ReadByHash("f", hash), data);
}

TEST_F(DepSkyTest, ScrubRelocatesShardWhenHolderStaysDown) {
  auto client = MakeClient("alice");
  Bytes data = Rng(23).RandomBytes(5000);
  const std::string hash = ContentHash(data);
  ASSERT_TRUE(client.WriteVersion("f", hash, data).ok());

  auto md = client.ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  const DepSkyVersion v = md->versions.back();
  // Preferred quorums leave one cloud without a shard — the relocation target.
  int spare = -1;
  unsigned holder = 0;
  for (unsigned c = 0; c < kClouds; ++c) {
    if (v.cloud_shard[c] < 0) {
      spare = static_cast<int>(c);
    } else {
      holder = c;
    }
  }
  ASSERT_GE(spare, 0);

  // The holder loses the object *and* stays unreachable: in-place repair is
  // impossible, so the scrubber must move the shard to the spare cloud and
  // update the metadata map.
  ASSERT_TRUE(clouds_[holder]
                  ->Delete({clouds_[holder]->provider_name() + ":alice"},
                           DepSkyClient::ValueKey("f", v.version))
                  .ok());
  clouds_[holder]->faults().SetUnavailable(true);

  auto report = client.ScrubUnit("f");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->objects_missing, 1u);
  EXPECT_EQ(report->objects_repaired, 0u);
  EXPECT_EQ(report->objects_relocated, 1u);
  EXPECT_EQ(report->repair_failures, 0u);

  auto after = client.ReadMetadata("f");
  ASSERT_TRUE(after.ok());
  const DepSkyVersion& moved = after->versions.back();
  EXPECT_EQ(moved.cloud_shard[holder], -1);
  EXPECT_EQ(moved.cloud_shard[static_cast<unsigned>(spare)],
            v.cloud_shard[holder]);

  // Readable with the dead cloud still dead.
  EXPECT_EQ(*client.ReadByHash("f", hash), data);
  clouds_[holder]->faults().SetUnavailable(false);
}

}  // namespace
}  // namespace scfs
