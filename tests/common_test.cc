// Unit tests for src/common: Status/Result, bytes/hex/serialization, paths,
// the LRU cache and the deterministic RNG.

#include <gtest/gtest.h>

#include <set>

#include "src/common/bytes.h"
#include "src/common/lru_cache.h"
#include "src/common/path.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace scfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "missing file");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing file");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(AlreadyExistsError("").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(UnavailableError("").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(TimeoutError("").code(), ErrorCode::kTimeout);
  EXPECT_EQ(ConflictError("").code(), ErrorCode::kConflict);
  EXPECT_EQ(CorruptionError("").code(), ErrorCode::kCorruption);
  EXPECT_EQ(InvalidArgumentError("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(IsDirectoryError("").code(), ErrorCode::kIsDirectory);
  EXPECT_EQ(NotDirectoryError("").code(), ErrorCode::kNotDirectory);
  EXPECT_EQ(NotEmptyError("").code(), ErrorCode::kNotEmpty);
  EXPECT_EQ(BusyError("").code(), ErrorCode::kBusy);
  EXPECT_EQ(NotSupportedError("").code(), ErrorCode::kNotSupported);
  EXPECT_EQ(InternalError("").code(), ErrorCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(NotFoundError("x")).status().code(), ErrorCode::kNotFound);
}

TEST(BytesTest, StringRoundTrip) {
  Bytes b = ToBytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(ToString(b), "hello");
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  EXPECT_EQ(HexEncode(b), "deadbeef007f");
  EXPECT_EQ(HexDecode("deadbeef007f"), b);
  EXPECT_EQ(HexDecode("DEADBEEF007F"), b);
}

TEST(BytesTest, HexDecodeRejectsMalformed) {
  EXPECT_TRUE(HexDecode("abc").empty());   // odd length
  EXPECT_TRUE(HexDecode("zz").empty());    // non-hex
}

TEST(BytesTest, ConstantTimeEquals) {
  EXPECT_TRUE(ConstantTimeEquals(ToBytes("abc"), ToBytes("abc")));
  EXPECT_FALSE(ConstantTimeEquals(ToBytes("abc"), ToBytes("abd")));
  EXPECT_FALSE(ConstantTimeEquals(ToBytes("abc"), ToBytes("abcd")));
}

TEST(BytesTest, SerializationRoundTrip) {
  Bytes out;
  AppendU32(&out, 0xdeadbeef);
  AppendU64(&out, 0x1122334455667788ULL);
  AppendBytes(&out, ToBytes("payload"));
  AppendString(&out, "name");

  ByteReader reader(out);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  Bytes payload;
  std::string name;
  ASSERT_TRUE(reader.ReadU32(&u32));
  ASSERT_TRUE(reader.ReadU64(&u64));
  ASSERT_TRUE(reader.ReadBytes(&payload));
  ASSERT_TRUE(reader.ReadString(&name));
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 0x1122334455667788ULL);
  EXPECT_EQ(ToString(payload), "payload");
  EXPECT_EQ(name, "name");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, ReaderDetectsTruncation) {
  Bytes out;
  AppendU32(&out, 100);  // claims 100 bytes follow, none do
  ByteReader reader(out);
  Bytes payload;
  EXPECT_FALSE(reader.ReadBytes(&payload));
  uint64_t v;
  EXPECT_FALSE(reader.ReadU64(&v));
}

TEST(PathTest, Normalize) {
  EXPECT_EQ(NormalizePath("/"), "/");
  EXPECT_EQ(NormalizePath("/a/b"), "/a/b");
  EXPECT_EQ(NormalizePath("//a///b/"), "/a/b");
  EXPECT_EQ(NormalizePath("/a/./b"), "/a/b");
  EXPECT_EQ(NormalizePath("relative"), "");
  EXPECT_EQ(NormalizePath("/a/../b"), "");  // dotdot rejected
  EXPECT_EQ(NormalizePath(""), "");
}

TEST(PathTest, ParentAndBasename) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
  EXPECT_EQ(Basename("/a/b/c"), "c");
  EXPECT_EQ(Basename("/a"), "a");
  EXPECT_EQ(Basename("/"), "");
}

TEST(PathTest, JoinAndSplit) {
  EXPECT_EQ(JoinPath("/", "a"), "/a");
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
  auto parts = SplitPath("/a/b/c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitPath("/").empty());
}

TEST(PathTest, IsWithin) {
  EXPECT_TRUE(PathIsWithin("/a/b", "/a"));
  EXPECT_TRUE(PathIsWithin("/a", "/a"));
  EXPECT_TRUE(PathIsWithin("/a", "/"));
  EXPECT_FALSE(PathIsWithin("/ab", "/a"));
  EXPECT_FALSE(PathIsWithin("/b", "/a"));
}

TEST(PathTest, IsValidPath) {
  EXPECT_TRUE(IsValidPath("/"));
  EXPECT_TRUE(IsValidPath("/a/b"));
  EXPECT_FALSE(IsValidPath("/a/"));
  EXPECT_FALSE(IsValidPath("a"));
  EXPECT_FALSE(IsValidPath(""));
}

TEST(LruCacheTest, BasicPutGet) {
  LruCache<std::string, int> cache(10);
  EXPECT_TRUE(cache.Put("a", 1));
  EXPECT_TRUE(cache.Put("b", 2));
  EXPECT_EQ(cache.Get("a").value(), 1);
  EXPECT_EQ(cache.Get("b").value(), 2);
  EXPECT_FALSE(cache.Get("c").has_value());
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<std::string, int> cache(2);  // entry-count budget
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Get("a");      // a is now most recent
  cache.Put("c", 3);   // evicts b
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
}

TEST(LruCacheTest, ByteBudgetWithSizeFn) {
  LruCache<std::string, std::string> cache(
      10, [](const std::string& v) { return v.size(); });
  EXPECT_TRUE(cache.Put("a", "12345"));
  EXPECT_TRUE(cache.Put("b", "12345"));
  EXPECT_EQ(cache.used_bytes(), 10u);
  cache.Put("c", "123");  // evicts a (LRU)
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_EQ(cache.used_bytes(), 8u);
}

TEST(LruCacheTest, OversizedValueRejected) {
  LruCache<std::string, std::string> cache(
      4, [](const std::string& v) { return v.size(); });
  EXPECT_FALSE(cache.Put("big", "12345"));
  EXPECT_FALSE(cache.Contains("big"));
}

TEST(LruCacheTest, EvictionCallbackFires) {
  std::vector<std::string> evicted;
  LruCache<std::string, int> cache(
      1, nullptr, [&](const std::string& k, int&&) { evicted.push_back(k); });
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "a");
  // Explicit erase must not fire the callback.
  cache.Erase("b");
  EXPECT_EQ(evicted.size(), 1u);
}

TEST(LruCacheTest, RechargeAfterInPlaceMutation) {
  LruCache<std::string, std::string> cache(
      10, [](const std::string& v) { return v.size(); });
  cache.Put("a", "12");
  std::string* ref = cache.GetRef("a");
  ASSERT_NE(ref, nullptr);
  *ref += "3456";
  cache.Recharge("a");
  EXPECT_EQ(cache.used_bytes(), 6u);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformU64(10);
    EXPECT_LT(v, 10u);
    int64_t w = rng.UniformInt(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, RandomBytesLengthAndSpread) {
  Rng rng(7);
  Bytes b = rng.RandomBytes(1000);
  EXPECT_EQ(b.size(), 1000u);
  std::set<uint8_t> distinct(b.begin(), b.end());
  EXPECT_GT(distinct.size(), 100u);  // not constant
}

TEST(RngTest, RandomNameAlphabet) {
  Rng rng(7);
  std::string name = rng.RandomName(64);
  EXPECT_EQ(name.size(), 64u);
  for (char c : name) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
  }
}

}  // namespace
}  // namespace scfs
