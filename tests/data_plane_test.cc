// Tests for the zero-copy data plane: span vocabulary, table-driven GF(2^8)
// row kernels, the ShardArena encode/decode paths, and the span/in-place
// crypto variants. The core property throughout: the accelerated paths
// produce byte-identical output to the seed implementation (reproduced here
// with Gf256::MulAddRowReference and per-block ChaCha20::Block calls).

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "src/codec/reed_solomon.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/math/gf256.h"
#include "src/math/matrix.h"

namespace scfs {
namespace {

// ---------------------------------------------------------------------------
// Span vocabulary.
// ---------------------------------------------------------------------------

TEST(ByteSpanTest, ViewsAndSubspans) {
  Bytes buffer = {1, 2, 3, 4, 5, 6, 7, 8};
  ConstByteSpan span(buffer);
  EXPECT_EQ(span.size(), 8u);
  EXPECT_EQ(span.data(), buffer.data());
  EXPECT_EQ(span[3], 4);

  ConstByteSpan middle = span.subspan(2, 3);
  EXPECT_EQ(middle.size(), 3u);
  EXPECT_EQ(middle[0], 3);

  // Clamped, not UB.
  EXPECT_EQ(span.subspan(6, 100).size(), 2u);
  EXPECT_EQ(span.subspan(100).size(), 0u);
  EXPECT_EQ(span.first(3).size(), 3u);
  EXPECT_EQ(span.first(100).size(), 8u);

  ByteSpan mut(buffer);
  mut[0] = 99;
  EXPECT_EQ(buffer[0], 99);
  ConstByteSpan from_mut = mut;  // implicit widening
  EXPECT_EQ(from_mut[0], 99);

  EXPECT_EQ(CopyToBytes(middle), (Bytes{3, 4, 5}));
}

TEST(ByteSpanTest, ReaderOverSpanMatchesReaderOverBytes) {
  Bytes encoded;
  AppendU32(&encoded, 7);
  AppendBytes(&encoded, Bytes{9, 8, 7});
  ByteReader reader{ConstByteSpan(encoded)};
  uint32_t v = 0;
  ConstByteSpan payload;
  ASSERT_TRUE(reader.ReadU32(&v));
  ASSERT_TRUE(reader.ReadBytesSpan(&payload));
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(payload.size(), 3u);
  EXPECT_EQ(payload.data(), encoded.data() + 8);  // zero-copy view
  EXPECT_TRUE(reader.AtEnd());
}

// ---------------------------------------------------------------------------
// GF(2^8) kernels.
// ---------------------------------------------------------------------------

TEST(Gf256KernelTest, PowLargeExponentRegression) {
  // log[a] * e overflowed 32-bit unsigned in the seed for large e; a^e must
  // equal a^(e mod 255) for every a (group order 255).
  for (unsigned a = 1; a < 256; ++a) {
    const uint8_t base = static_cast<uint8_t>(a);
    for (unsigned e : {255u, 256u, 1000u, 0x7fffffffu, 0xfffffffeu,
                       0xffffffffu}) {
      EXPECT_EQ(Gf256::Pow(base, e), Gf256::Pow(base, e % 255u))
          << "a=" << a << " e=" << e;
    }
  }
  // Spot-check against square-and-multiply.
  for (uint8_t a : {2, 3, 29, 255}) {
    for (unsigned e : {12345u, 0xfffffff0u}) {
      uint8_t expected = 1;
      for (unsigned i = 0; i < e % 255u; ++i) {
        expected = Gf256::Mul(expected, a);
      }
      EXPECT_EQ(Gf256::Pow(a, e), expected) << int(a) << "^" << e;
    }
  }
}

TEST(Gf256KernelTest, TableKernelMatchesReferenceAllScalars) {
  Rng rng(21);
  Bytes in = rng.RandomBytes(257);  // odd length exercises the tail loop
  for (unsigned scalar = 0; scalar < 256; ++scalar) {
    Bytes expected(in.size(), 0x5a);
    Bytes actual = expected;
    Gf256::MulAddRowReference(expected.data(), in.data(),
                              static_cast<uint8_t>(scalar), in.size());
    Gf256::MulAddRow(actual.data(), in.data(), static_cast<uint8_t>(scalar),
                     in.size());
    ASSERT_EQ(actual, expected) << "scalar=" << scalar;
  }
}

TEST(Gf256KernelTest, TableKernelMatchesReferenceAllLengthsAndOffsets) {
  Rng rng(22);
  Bytes in = rng.RandomBytes(200);
  const Gf256::MulTable table = Gf256::BuildMulTable(0xc3);
  for (size_t offset : {0u, 1u, 3u, 7u}) {
    for (size_t len = 0; len + offset <= in.size(); len += 11) {
      Bytes expected(len, 0);
      Bytes actual(len, 0);
      Gf256::MulAddRowReference(expected.data(), in.data() + offset, 0xc3,
                                len);
      Gf256::MulAddRow(actual.data(), in.data() + offset, table, len);
      ASSERT_EQ(actual, expected) << "offset=" << offset << " len=" << len;
    }
  }
}

TEST(Gf256KernelTest, AddRowIsXor) {
  Rng rng(23);
  Bytes a = rng.RandomBytes(100);
  Bytes b = rng.RandomBytes(100);
  Bytes expected = a;
  for (size_t i = 0; i < a.size(); ++i) {
    expected[i] ^= b[i];
  }
  Gf256::AddRow(a.data(), b.data(), a.size());
  EXPECT_EQ(a, expected);
}

// ---------------------------------------------------------------------------
// Seed replica of the erasure encode (frame + slice + byte-at-a-time parity),
// the byte-identical oracle for the arena path.
// ---------------------------------------------------------------------------

std::vector<Bytes> SeedEncode(unsigned n, unsigned k, const Bytes& data) {
  GfMatrix matrix = GfMatrix::SystematicVandermonde(n, k);
  Bytes framed;
  AppendU64(&framed, data.size());
  framed.insert(framed.end(), data.begin(), data.end());
  const size_t per_shard = (data.size() + 8 + k - 1) / k;
  framed.resize(per_shard * k, 0);
  std::vector<Bytes> shards(n);
  for (unsigned i = 0; i < k; ++i) {
    shards[i].assign(framed.begin() + i * per_shard,
                     framed.begin() + (i + 1) * per_shard);
  }
  for (unsigned row = k; row < n; ++row) {
    shards[row].assign(per_shard, 0);
    for (unsigned col = 0; col < k; ++col) {
      Gf256::MulAddRowReference(shards[row].data(), shards[col].data(),
                                matrix.At(row, col), per_shard);
    }
  }
  return shards;
}

TEST(ShardArenaTest, EncodeByteIdenticalToSeed) {
  Rng rng(31);
  for (auto [n, k] : std::vector<std::pair<unsigned, unsigned>>{
           {4, 2}, {7, 3}, {10, 4}, {6, 2}, {3, 1}, {5, 5}}) {
    for (size_t size : {0u, 1u, 63u, 64u, 1000u, 70000u}) {
      Bytes data = rng.RandomBytes(size);
      ErasureCodec codec(n, k);
      ShardArena arena = codec.EncodeToArena(data);
      std::vector<Bytes> seed = SeedEncode(n, k, data);
      ASSERT_EQ(arena.n(), n);
      ASSERT_EQ(arena.shard_size(), seed[0].size());
      for (unsigned i = 0; i < n; ++i) {
        ASSERT_EQ(CopyToBytes(arena.shard(i)), seed[i])
            << "n=" << n << " k=" << k << " size=" << size << " shard=" << i;
      }
    }
  }
}

TEST(ShardArenaTest, SystematicShardsAliasTheFrame) {
  ErasureCodec codec(4, 2);
  Bytes data(1000, 0xab);
  ShardArena arena = codec.EncodeToArena(data);
  // Shards are views into one contiguous buffer, in order, no copies.
  EXPECT_EQ(arena.shard(1).data(), arena.shard(0).data() + arena.shard_size());
  EXPECT_EQ(arena.data_region().data(), arena.shard(0).data());
  EXPECT_EQ(arena.payload().data(), arena.shard(0).data() + 8);
}

TEST(ShardArenaTest, PreparedArenaFusesProducerWrites) {
  // Writing through payload() then computing parity equals one-step encode.
  Rng rng(32);
  Bytes data = rng.RandomBytes(5000);
  ErasureCodec codec(4, 2);
  ShardArena fused = codec.PrepareArena(data.size());
  std::copy(data.begin(), data.end(), fused.payload().begin());
  codec.ComputeParity(&fused);
  ShardArena direct = codec.EncodeToArena(data);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(CopyToBytes(fused.shard(i)), CopyToBytes(direct.shard(i)));
  }
}

// ---------------------------------------------------------------------------
// Round-trip property test: every paper-relevant (n, k), random payload
// sizes, and every erasure pattern of up to n-k lost shards.
// ---------------------------------------------------------------------------

TEST(ErasureCodecPropertyTest, RoundTripAllErasurePatterns) {
  Rng rng(33);
  // (4,2): f=1, the paper's deployment; (7,3): f=2; (10,4): f=3; plus
  // degenerate shapes (no parity, single data shard).
  for (auto [n, k] : std::vector<std::pair<unsigned, unsigned>>{
           {4, 2}, {7, 3}, {10, 4}, {3, 1}, {4, 4}}) {
    ErasureCodec codec(n, k);
    for (size_t size : {0u, 1u, 509u, 4096u, 10000u}) {
      Bytes data = rng.RandomBytes(size);
      ShardArena arena = codec.EncodeToArena(data);

      // Every subset of shards with at least k survivors, i.e. every erasure
      // pattern of up to n-k losses.
      for (uint32_t mask = 0; mask < (1u << n); ++mask) {
        if (static_cast<unsigned>(__builtin_popcount(mask)) < k) {
          continue;
        }
        std::vector<std::optional<Bytes>> have(n);
        for (unsigned i = 0; i < n; ++i) {
          if (mask & (1u << i)) {
            have[i] = CopyToBytes(arena.shard(i));
          }
        }
        auto decoded = codec.Decode(have);
        ASSERT_TRUE(decoded.ok())
            << "n=" << n << " k=" << k << " mask=" << mask;
        ASSERT_EQ(*decoded, data)
            << "n=" << n << " k=" << k << " mask=" << mask;
      }
    }
  }
}

TEST(ErasureCodecPropertyTest, TooFewShardsRejected) {
  ErasureCodec codec(4, 2);
  Bytes data(100, 1);
  ShardArena arena = codec.EncodeToArena(data);
  std::vector<std::optional<Bytes>> have(4);
  have[1] = CopyToBytes(arena.shard(1));
  EXPECT_FALSE(codec.Decode(have).ok());
}

TEST(ErasureCodecPropertyTest, CorruptedShardChangesOutputAndHashCatchesIt) {
  Rng rng(34);
  Bytes data = rng.RandomBytes(2048);
  ErasureCodec codec(4, 2);
  ShardArena arena = codec.EncodeToArena(data);
  Bytes shard_hash = Sha256::Hash(arena.shard(1));

  // Corrupt a byte of shard 1 beyond the header region and decode with it.
  Bytes corrupted = CopyToBytes(arena.shard(1));
  corrupted[corrupted.size() / 2] ^= 0x40;
  std::vector<std::optional<Bytes>> have(4);
  have[1] = corrupted;
  have[3] = CopyToBytes(arena.shard(3));
  auto decoded = codec.Decode(have);
  // RS itself cannot detect the corruption (it decodes garbage)...
  if (decoded.ok()) {
    EXPECT_NE(*decoded, data);
  }
  // ...which is why DepSky hash-checks every shard before decoding: the
  // recorded SHA-256 flags the corrupted shard so it is never used.
  EXPECT_NE(Sha256::Hash(corrupted), shard_hash);
  EXPECT_EQ(Sha256::Hash(arena.shard(1)), shard_hash);
}

TEST(ErasureCodecPropertyTest, DecodeShardsLegacyApiMatchesDecodeInto) {
  Rng rng(35);
  ReedSolomon rs(5, 3);
  std::vector<Bytes> data(3);
  for (auto& shard : data) {
    shard = rng.RandomBytes(777);
  }
  auto encoded = rs.EncodeShards(data);
  ASSERT_TRUE(encoded.ok());
  std::vector<std::optional<Bytes>> have(5);
  have[0] = (*encoded)[0];
  have[3] = (*encoded)[3];
  have[4] = (*encoded)[4];
  auto decoded = rs.DecodeShards(have);
  ASSERT_TRUE(decoded.ok());
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ((*decoded)[i], data[i]);
  }
}

// ---------------------------------------------------------------------------
// Crypto span variants.
// ---------------------------------------------------------------------------

// Seed replica: per-block state setup through the public Block API.
Bytes SeedCrypt(const Bytes& key, const Bytes& nonce, uint32_t counter,
                const Bytes& input) {
  Bytes out(input.size());
  size_t offset = 0;
  while (offset < input.size()) {
    auto ks = ChaCha20::Block(key, nonce, counter++);
    size_t n = std::min<size_t>(64, input.size() - offset);
    for (size_t i = 0; i < n; ++i) {
      out[offset + i] = input[offset + i] ^ ks[i];
    }
    offset += n;
  }
  return out;
}

TEST(ChaCha20SpanTest, CryptIntoMatchesSeedBlockPath) {
  Rng rng(41);
  Bytes key = rng.RandomBytes(ChaCha20::kKeySize);
  Bytes nonce = rng.RandomBytes(ChaCha20::kNonceSize);
  for (size_t size : {0u, 1u, 63u, 64u, 65u, 128u, 1000u, 65536u}) {
    Bytes input = rng.RandomBytes(size);
    Bytes expected = SeedCrypt(key, nonce, 7, input);
    EXPECT_EQ(ChaCha20::Crypt(key, nonce, 7, input), expected) << size;

    Bytes out(size);
    ChaCha20::CryptInto(key, nonce, 7, input, ByteSpan(out));
    EXPECT_EQ(out, expected) << size;

    Bytes in_place = input;
    ChaCha20::CryptInPlace(key, nonce, 7, ByteSpan(in_place));
    EXPECT_EQ(in_place, expected) << size;

    // Decrypt restores the plaintext.
    ChaCha20::CryptInPlace(key, nonce, 7, ByteSpan(in_place));
    EXPECT_EQ(in_place, input) << size;
  }
}

TEST(Sha256DispatchTest, HardwarePathMatchesPortable) {
  Rng rng(42);
  for (size_t size : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 1000u,
                      100000u}) {
    Bytes data = rng.RandomBytes(size);
    Sha256::ForcePortableForTesting(true);
    Bytes portable = Sha256::Hash(data);
    Sha256::ForcePortableForTesting(false);
    Bytes dispatched = Sha256::Hash(data);
    EXPECT_EQ(portable, dispatched) << size;
  }
}

TEST(Sha256DispatchTest, ChunkedUpdatesMatchOneShot) {
  Rng rng(43);
  Bytes data = rng.RandomBytes(10000);
  Sha256 chunked;
  size_t offset = 0;
  size_t step = 1;
  while (offset < data.size()) {
    size_t n = std::min(step, data.size() - offset);
    chunked.Update(ConstByteSpan(data.data() + offset, n));
    offset += n;
    step = step * 2 + 1;
  }
  auto digest = chunked.Finish();
  EXPECT_EQ(Bytes(digest.begin(), digest.end()), Sha256::Hash(data));
}

TEST(Sha1SpanTest, SpanOverloadMatchesStringView) {
  Bytes data = ToBytes("consistency anchor hash input");
  EXPECT_EQ(Sha1::Hash(ConstByteSpan(data)),
            Sha1::Hash(std::string_view("consistency anchor hash input")));
}

}  // namespace
}  // namespace scfs
