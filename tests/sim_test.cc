// Unit tests for the simulation kernel: environments, latency models, fault
// injection and the delayed-delivery queue.

#include <gtest/gtest.h>

#include <thread>

#include "src/sim/environment.h"
#include "src/sim/fault.h"
#include "src/sim/latency.h"
#include "src/sim/queue.h"

namespace scfs {
namespace {

TEST(EnvironmentTest, InstantModeAdvancesOnSleep) {
  auto env = Environment::Instant();
  VirtualTime t0 = env->Now();
  env->Sleep(5 * kSecond);
  EXPECT_GE(env->Now() - t0, 5 * kSecond);
}

TEST(EnvironmentTest, InstantSleepDoesNotBlock) {
  auto env = Environment::Instant();
  auto start = std::chrono::steady_clock::now();
  env->Sleep(3600 * kSecond);  // one virtual hour
  auto real = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(real).count(),
            100);
}

TEST(EnvironmentTest, ScaledModeTracksRealTime) {
  // 1 virtual second = 0.1 real ms => sleeping 100 virtual ms costs ~10 us.
  auto env = Environment::Scaled(1e-4);
  VirtualTime t0 = env->Now();
  env->Sleep(100 * kMillisecond);
  VirtualTime elapsed = env->Now() - t0;
  EXPECT_GE(elapsed, 90 * kMillisecond);
  EXPECT_LT(elapsed, 5000 * kMillisecond);  // generous upper bound
}

TEST(EnvironmentTest, NegativeSleepIsNoop) {
  auto env = Environment::Instant();
  VirtualTime t0 = env->Now();
  env->Sleep(-100);
  EXPECT_EQ(env->Now(), t0);
}

TEST(LatencyModelTest, NoneIsZero) {
  Rng rng(1);
  EXPECT_EQ(LatencyModel::None().Sample(rng, 1000000), 0);
}

TEST(LatencyModelTest, FixedBase) {
  Rng rng(1);
  auto model = LatencyModel::Fixed(50 * kMillisecond);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.Sample(rng, 0), 50 * kMillisecond);
  }
}

TEST(LatencyModelTest, JitterWithinBounds) {
  Rng rng(1);
  LatencyModel model{10 * kMillisecond, 5 * kMillisecond, 0.0};
  for (int i = 0; i < 200; ++i) {
    auto d = model.Sample(rng, 0);
    EXPECT_GE(d, 10 * kMillisecond);
    EXPECT_LE(d, 15 * kMillisecond);
  }
}

TEST(LatencyModelTest, BandwidthScalesWithSize) {
  Rng rng(1);
  auto model = LatencyModel::WideArea(0, 0, 1.0);  // 1 MB/s
  auto one_mb = model.Sample(rng, 1024 * 1024);
  EXPECT_NEAR(static_cast<double>(one_mb), kSecond, kSecond * 0.01);
  auto two_mb = model.Sample(rng, 2 * 1024 * 1024);
  EXPECT_NEAR(static_cast<double>(two_mb), 2.0 * kSecond, kSecond * 0.02);
}

TEST(FaultInjectorTest, UnavailableFailsEverything) {
  FaultInjector faults;
  EXPECT_FALSE(faults.ShouldFailOperation());
  faults.SetUnavailable(true);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(faults.ShouldFailOperation());
  }
  faults.SetUnavailable(false);
  EXPECT_FALSE(faults.ShouldFailOperation());
}

TEST(FaultInjectorTest, TransientFailureProbability) {
  FaultInjector faults;
  faults.SetTransientFailureProbability(0.5);
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (faults.ShouldFailOperation()) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 350);
  EXPECT_LT(failures, 650);
}

TEST(FaultInjectorTest, CorruptNextReadsCountsDown) {
  FaultInjector faults;
  EXPECT_FALSE(faults.ShouldCorruptRead());
  faults.CorruptNextReads(2);
  EXPECT_TRUE(faults.ShouldCorruptRead());
  EXPECT_TRUE(faults.ShouldCorruptRead());
  EXPECT_FALSE(faults.ShouldCorruptRead());
}

TEST(FaultInjectorTest, CorruptAllReads) {
  FaultInjector faults;
  faults.SetCorruptAllReads(true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(faults.ShouldCorruptRead());
  }
  faults.SetCorruptAllReads(false);
  EXPECT_FALSE(faults.ShouldCorruptRead());
}

TEST(DelayedQueueTest, FifoForEqualDeliveryTimes) {
  auto env = Environment::Instant();
  DelayedQueue<int> queue(env.get());
  queue.PushNow(1);
  queue.PushNow(2);
  queue.PushNow(3);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(DelayedQueueTest, DeliveryOrderFollowsDeadlines) {
  auto env = Environment::Instant();
  DelayedQueue<int> queue(env.get());
  VirtualTime now = env->Now();
  queue.Push(2, now + 20 * kMillisecond);
  queue.Push(1, now + 10 * kMillisecond);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
}

TEST(DelayedQueueTest, TryPopRespectsDeliveryTime) {
  auto env = Environment::Instant();
  DelayedQueue<int> queue(env.get());
  queue.Push(1, env->Now() + kSecond);
  EXPECT_FALSE(queue.TryPop().has_value());
  env->Sleep(2 * kSecond);
  EXPECT_TRUE(queue.TryPop().has_value());
}

TEST(DelayedQueueTest, PopForTimesOut) {
  auto env = Environment::Instant();
  DelayedQueue<int> queue(env.get());
  EXPECT_FALSE(queue.PopFor(10 * kMillisecond).has_value());
}

TEST(DelayedQueueTest, CloseUnblocksPop) {
  auto env = Environment::Scaled(1e-5);
  DelayedQueue<int> queue(env.get());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.Close();
  });
  EXPECT_FALSE(queue.Pop().has_value());
  closer.join();
}

TEST(DelayedQueueTest, ScaledModeDelaysDelivery) {
  auto env = Environment::Scaled(1e-5);
  DelayedQueue<int> queue(env.get());
  queue.Push(42, env->Now() + 100 * kMillisecond);
  auto v = queue.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_GE(env->Now(), 100 * kMillisecond);
}

TEST(DelayedQueueTest, ManyProducersOneConsumer) {
  auto env = Environment::Scaled(1e-6);
  DelayedQueue<int> queue(env.get());
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, &env, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i, env->Now() + i * kMillisecond);
      }
    });
  }
  std::set<int> seen;
  for (int i = 0; i < 4 * kPerProducer; ++i) {
    auto v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    seen.insert(*v);
  }
  EXPECT_EQ(seen.size(), 4u * kPerProducer);
  for (auto& t : producers) {
    t.join();
  }
}

}  // namespace
}  // namespace scfs
