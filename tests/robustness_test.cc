// Data-plane robustness tests: DepSky read/write with exactly f faulty
// clouds (outage, corruption, Byzantine) at (n=4, f=1) and (n=7, f=2),
// hedged reads racing a straggler on a scaled clock, per-attempt deadlines,
// fake-clock circuit-breaker unit tests, and BackoffPolicy bounds.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "src/chaos/campaign.h"
#include "src/cloud/health.h"
#include "src/cloud/simulated_cloud.h"
#include "src/common/backoff.h"
#include "src/crypto/sha1.h"
#include "src/depsky/depsky.h"
#include "src/scfs/background.h"
#include "src/scfs/blob_backend.h"
#include "src/scfs/deployment.h"
#include "src/scfs/scrubber.h"
#include "src/sim/fault_schedule.h"

namespace scfs {
namespace {

std::string ContentHash(const Bytes& data) {
  return HexEncode(Sha1::Hash(data));
}

// ---------------------------------------------------------------------------
// DepSky at exactly f faulty clouds, parameterized over (n, f).
// ---------------------------------------------------------------------------

class DepSkyFaultMarginTest : public ::testing::TestWithParam<unsigned> {
 protected:
  DepSkyFaultMarginTest() : env_(Environment::Instant()) {
    const unsigned n = 3 * GetParam() + 1;
    for (unsigned i = 0; i < n; ++i) {
      CloudProfile profile;
      profile.name = "cloud" + std::to_string(i);
      clouds_.push_back(
          std::make_unique<SimulatedCloud>(profile, env_.get(), 30 + i));
    }
  }

  DepSkyClient MakeClient() {
    DepSkyConfig config;
    config.f = GetParam();
    config.auth_key = ToBytes("deployment-auth-key");
    std::vector<DepSkyCloud> set;
    for (auto& cloud : clouds_) {
      set.push_back(DepSkyCloud{cloud.get(),
                                {cloud->provider_name() + ":alice"}});
    }
    return DepSkyClient(env_.get(), std::move(set), config, 4321);
  }

  unsigned f() const { return GetParam(); }

  std::unique_ptr<Environment> env_;
  std::vector<std::unique_ptr<SimulatedCloud>> clouds_;
};

TEST_P(DepSkyFaultMarginTest, ReadsSurviveExactlyFOutages) {
  auto client = MakeClient();
  Bytes data(9000, 5);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  for (unsigned i = 0; i < f(); ++i) {
    clouds_[i]->faults().SetUnavailable(true);
  }
  auto read = client.ReadByHash("f", ContentHash(data));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

TEST_P(DepSkyFaultMarginTest, WritesSurviveExactlyFOutages) {
  auto client = MakeClient();
  for (unsigned i = 0; i < f(); ++i) {
    clouds_[i]->faults().SetUnavailable(true);
  }
  Bytes data(7000, 6);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  // Readable while the same f clouds stay down, and after they return.
  EXPECT_EQ(*client.ReadLatest("f"), data);
  for (unsigned i = 0; i < f(); ++i) {
    clouds_[i]->faults().SetUnavailable(false);
  }
  EXPECT_EQ(*client.ReadLatest("f"), data);
}

TEST_P(DepSkyFaultMarginTest, ReadsSurviveExactlyFCorruptClouds) {
  auto client = MakeClient();
  Bytes data(9000, 7);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  for (unsigned i = 0; i < f(); ++i) {
    clouds_[i]->faults().SetCorruptAllReads(true);
  }
  auto read = client.ReadByHash("f", ContentHash(data));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

// The stored value object carries the erasure shard AND a key share; the
// metadata hash must cover both. A fault that flips only the share bytes
// (leaving the shard intact) used to pass the shard-only hash check and
// poison key reconstruction — the read then failed the final content hash
// instead of routing around the bad object.
TEST_P(DepSkyFaultMarginTest, ReadsSurvivePoisonedKeyShareAtFClouds) {
  auto client = MakeClient();
  Bytes data(9000, 8);
  auto version = client.WriteVersion("f", ContentHash(data), data);
  ASSERT_TRUE(version.ok());
  const std::string value_key = DepSkyClient::ValueKey("f", *version);
  for (unsigned i = 0; i < f(); ++i) {
    CloudCredentials creds{clouds_[i]->provider_name() + ":alice"};
    auto object = clouds_[i]->Get(creds, value_key);
    ASSERT_TRUE(object.ok());
    object->back() ^= 0x01;  // the share rides at the tail, after the shard
    ASSERT_TRUE(clouds_[i]->Put(creds, value_key, *object).ok());
  }
  auto read = client.ReadByHash("f", ContentHash(data));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

TEST_P(DepSkyFaultMarginTest, ReadsSurviveExactlyFByzantineClouds) {
  auto client = MakeClient();
  Bytes v1 = ToBytes("version one");
  Bytes v2 = ToBytes("version two!");
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v1), v1).ok());
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(v2), v2).ok());
  // f clouds serve arbitrarily stale (but authentic) state; the quorum's
  // maximum authenticated version must win.
  for (unsigned i = 0; i < f(); ++i) {
    clouds_[i]->faults().SetByzantine(true);
  }
  EXPECT_EQ(*client.ReadLatest("f"), v2);
}

TEST_P(DepSkyFaultMarginTest, MixedFaultClassesAcrossFClouds) {
  if (f() < 2) {
    GTEST_SKIP() << "needs f >= 2 to mix fault classes";
  }
  auto client = MakeClient();
  Bytes data(9000, 8);
  ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
  clouds_[0]->faults().SetUnavailable(true);
  clouds_[1]->faults().SetCorruptAllReads(true);
  auto read = client.ReadByHash("f", ContentHash(data));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

INSTANTIATE_TEST_SUITE_P(FaultMargins, DepSkyFaultMarginTest,
                         ::testing::Values(1u, 2u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "f" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Hedged reads and deadlines need a scaled clock (timers are inert in
// instant environments).
// ---------------------------------------------------------------------------

class DepSkyTimerTest : public ::testing::Test {
 protected:
  DepSkyTimerTest() : env_(Environment::Scaled(1e-3)) {
    for (unsigned i = 0; i < 4; ++i) {
      CloudProfile profile;
      profile.name = "cloud" + std::to_string(i);
      clouds_.push_back(
          std::make_unique<SimulatedCloud>(profile, env_.get(), 40 + i));
    }
  }

  DepSkyClient MakeClient(DepSkyConfig config) {
    config.f = 1;
    config.auth_key = ToBytes("deployment-auth-key");
    std::vector<DepSkyCloud> set;
    for (auto& cloud : clouds_) {
      set.push_back(DepSkyCloud{cloud.get(),
                                {cloud->provider_name() + ":alice"}});
    }
    return DepSkyClient(env_.get(), std::move(set), config, 777);
  }

  std::unique_ptr<Environment> env_;
  std::vector<std::unique_ptr<SimulatedCloud>> clouds_;
};

TEST_F(DepSkyTimerTest, HedgedReadRoutesAroundStraggler) {
  DepSkyConfig config;
  config.request_deadline = 60 * kSecond;  // out of the way
  config.max_attempts = 1;
  Bytes data(9000, 9);
  {
    auto client = MakeClient(config);
    ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
    // With preferred quorums the shards live on clouds 0..2; the read
    // launches k=2 holders (clouds 0 and 1). Make cloud 0 a straggler
    // (30 s brown-out): cloud 1 answers but k is not reached, and nothing
    // has *failed*, so only the hedge timer can bring in cloud 2 and
    // finish the read quickly.
    clouds_[0]->faults().SetLatencyDegradation(30 * kSecond);
    const VirtualTime before = env_->Now();
    auto read = client.ReadByHash("f", ContentHash(data));
    const VirtualDuration elapsed = env_->Now() - before;
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(*read, data);
    EXPECT_GE(client.hedged_reads(), 1u);
    // Far faster than waiting out the straggler; generous bound for CI
    // noise.
    EXPECT_LT(elapsed, 15 * kSecond);
    clouds_[0]->faults().SetLatencyDegradation(0);
    // Destruction waits for the straggler's in-flight op.
  }
}

TEST_F(DepSkyTimerTest, DeadlineExpiryCountsAndRecovers) {
  DepSkyConfig config;
  config.request_deadline = 500 * kMillisecond;
  config.max_attempts = 2;
  {
    auto client = MakeClient(config);
    Bytes data = ToBytes("deadline test");
    ASSERT_TRUE(client.WriteVersion("f", ContentHash(data), data).ok());
    // One cloud stops answering within any deadline; quorum operations must
    // still complete from the other three, and the expiry must be counted.
    clouds_[3]->faults().SetLatencyDegradation(30 * kSecond);
    auto md = client.ReadMetadata("f");
    ASSERT_TRUE(md.ok()) << md.status().ToString();
    // Let the straggler's deadline fire on the timer thread.
    env_->Sleep(2 * kSecond);
    EXPECT_GE(client.deadline_expiries(), 1u);
    clouds_[3]->faults().SetLatencyDegradation(0);
  }
}

// ---------------------------------------------------------------------------
// Circuit breaker, driven by a fake clock.
// ---------------------------------------------------------------------------

TEST(CloudHealthTrackerTest, TripsAfterThresholdAndDemotes) {
  HealthOptions options;
  options.failure_threshold = 3;
  options.open_duration = FromMillis(1000);
  CloudHealthTracker tracker(4, options);
  VirtualTime now = 1000;

  EXPECT_FALSE(tracker.Demoted(1, now));
  tracker.RecordFailure(1, now);
  tracker.RecordFailure(1, now);
  EXPECT_FALSE(tracker.Demoted(1, now));  // below threshold
  tracker.RecordFailure(1, now);
  EXPECT_TRUE(tracker.Demoted(1, now));  // tripped
  EXPECT_EQ(tracker.breaker_trips(), 1u);
  EXPECT_EQ(tracker.snapshot(1, now).state, BreakerState::kOpen);

  // Still demoted just before the cooldown elapses; half-open after.
  now += FromMillis(999);
  EXPECT_TRUE(tracker.Demoted(1, now));
  now += FromMillis(2);
  EXPECT_FALSE(tracker.Demoted(1, now));
  EXPECT_EQ(tracker.snapshot(1, now).state, BreakerState::kHalfOpen);
}

TEST(CloudHealthTrackerTest, ProbeSuccessClosesProbeFailureReopens) {
  HealthOptions options;
  options.failure_threshold = 2;
  options.open_duration = FromMillis(1000);
  CloudHealthTracker tracker(2, options);
  VirtualTime now = 0;

  tracker.RecordFailure(0, now);
  tracker.RecordFailure(0, now);
  EXPECT_TRUE(tracker.Demoted(0, now));
  now += FromMillis(1500);  // cooldown elapsed: next op is the probe

  // Failed probe: re-opens for a fresh cooldown and counts a new trip.
  tracker.RecordFailure(0, now);
  EXPECT_TRUE(tracker.Demoted(0, now));
  EXPECT_EQ(tracker.breaker_trips(), 2u);
  now += FromMillis(1500);

  // Successful probe: closes.
  tracker.RecordSuccess(0, now, FromMillis(20));
  EXPECT_FALSE(tracker.Demoted(0, now));
  EXPECT_EQ(tracker.snapshot(0, now).state, BreakerState::kClosed);
  EXPECT_EQ(tracker.snapshot(0, now).consecutive_failures, 0);
}

TEST(CloudHealthTrackerTest, ReorderMovesDemotedToBackKeepingCostOrder) {
  HealthOptions options;
  options.failure_threshold = 1;
  options.open_duration = FromMillis(1000);
  CloudHealthTracker tracker(4, options);
  VirtualTime now = 0;
  tracker.RecordFailure(1, now);  // trips immediately (threshold 1)

  std::vector<unsigned> base(4);
  std::iota(base.begin(), base.end(), 0u);
  EXPECT_EQ(tracker.Reorder(base, now),
            (std::vector<unsigned>{0, 2, 3, 1}));

  // After the cooldown the cloud re-enters at its cost rank.
  now += FromMillis(1500);
  EXPECT_EQ(tracker.Reorder(base, now),
            (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(CloudHealthTrackerTest, HedgeDelayTracksMedianHealthyLatency) {
  HealthOptions options;
  options.hedge_floor = FromMillis(50);
  options.hedge_multiplier = 2.0;
  options.ewma_alpha = 1.0;  // last sample wins: easy arithmetic
  CloudHealthTracker tracker(3, options);

  // No samples yet: the floor.
  EXPECT_EQ(tracker.HedgeDelay(), FromMillis(50));

  VirtualTime now = 0;
  tracker.RecordSuccess(0, now, FromMillis(40));
  tracker.RecordSuccess(1, now, FromMillis(100));
  tracker.RecordSuccess(2, now, FromMillis(400));
  // Median 100 ms * 2.0 = 200 ms.
  EXPECT_EQ(tracker.HedgeDelay(), FromMillis(200));
}

// ---------------------------------------------------------------------------
// BackoffPolicy.
// ---------------------------------------------------------------------------

TEST(BackoffPolicyTest, GrowsAndCapsWithJitterBounds) {
  BackoffPolicy policy{FromMillis(100), FromMillis(800), 2.0, 0.5};
  Rng rng(1);
  for (int attempt = 0; attempt < 10; ++attempt) {
    // Expected full (pre-jitter) delay: 100ms * 2^attempt, capped at 800ms.
    double full = 100.0 * kMillisecond;
    for (int i = 0; i < attempt && full < 800.0 * kMillisecond; ++i) {
      full *= 2;
    }
    full = std::min(full, 800.0 * kMillisecond);
    const VirtualDuration delay = policy.Delay(attempt, rng);
    EXPECT_LE(delay, static_cast<VirtualDuration>(full)) << attempt;
    EXPECT_GE(delay, static_cast<VirtualDuration>(full * 0.5) - 1) << attempt;
  }
}

TEST(BackoffPolicyTest, FixedIsDeterministic) {
  BackoffPolicy policy = BackoffPolicy::Fixed(FromMillis(30));
  Rng rng(2);
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(policy.Delay(attempt, rng), FromMillis(30));
  }
}

TEST(BackoffPolicyTest, ZeroJitterIsExact) {
  BackoffPolicy policy{FromMillis(10), FromMillis(40), 2.0, 0.0};
  Rng rng(3);
  EXPECT_EQ(policy.Delay(0, rng), FromMillis(10));
  EXPECT_EQ(policy.Delay(1, rng), FromMillis(20));
  EXPECT_EQ(policy.Delay(2, rng), FromMillis(40));
  EXPECT_EQ(policy.Delay(3, rng), FromMillis(40));  // capped
}

// ---------------------------------------------------------------------------
// Chaos campaign + background scrubber: outage with data loss, repair after.
// ---------------------------------------------------------------------------

TEST(StripedRepairChaosTest, OutageWithDataLossScrubRestoresRedundancy) {
  auto env = Environment::Instant();
  std::vector<std::unique_ptr<SimulatedCloud>> clouds;
  for (unsigned i = 0; i < 4; ++i) {
    CloudProfile profile;
    profile.name = "cloud" + std::to_string(i);
    clouds.push_back(
        std::make_unique<SimulatedCloud>(profile, env.get(), 60 + i));
  }
  DepSkyConfig config;
  config.f = 1;
  config.auth_key = ToBytes("deployment-auth-key");
  config.stripe_threshold = 1024;
  config.stripe_unit_size = 1024;
  config.stripe_inflight = 4;
  std::vector<DepSkyCloud> set;
  for (auto& cloud : clouds) {
    set.push_back(DepSkyCloud{cloud.get(),
                              {cloud->provider_name() + ":alice"}});
  }
  auto client =
      std::make_shared<DepSkyClient>(env.get(), std::move(set), config, 777);
  DepSkyBackend backend(client);
  // The scrubber rides a serialized background lane, like every other
  // non-blocking stage.
  BackgroundUploaderOptions lane_options;
  lane_options.serialize = true;
  BackgroundUploader lane(lane_options);
  BackgroundScrubber scrubber(&backend, &lane);
  scrubber.Track("f");

  Bytes data = Rng(31).RandomBytes(8 * 1024);
  const std::string hash = HexEncode(Sha1::Hash(data));
  ASSERT_TRUE(backend.WriteVersion("f", hash, data, {}).ok());

  auto md = client->ReadMetadata("f");
  ASSERT_TRUE(md.ok());
  const DepSkyVersion version = md->versions.back();
  ASSERT_TRUE(version.striped());

  // Pick a cloud that holds a shard of every unit, fail it with a chaos
  // campaign, and model permanent data loss: its stored objects for this
  // file are gone when the provider comes back.
  unsigned victim = 0;
  for (unsigned c = 0; c < clouds.size(); ++c) {
    bool holds_all = true;
    for (const auto& su : version.stripe_units) {
      holds_all = holds_all && su.cloud_shard[c] >= 0;
    }
    if (holds_all) {
      victim = c;
      break;
    }
  }
  for (size_t u = 0; u < version.stripe_units.size(); ++u) {
    ASSERT_TRUE(
        clouds[victim]
            ->Delete({clouds[victim]->provider_name() + ":alice"},
                     DepSkyClient::StripeValueKey("f", version.version, u))
            .ok());
  }
  auto schedule = ParseFaultSchedule(
      "kind=outage cloud=" + std::to_string(victim) + " at=0ms for=200ms\n");
  ASSERT_TRUE(schedule.ok());
  ChaosTargets targets;
  for (auto& cloud : clouds) {
    targets.clouds.push_back(cloud.get());
  }
  ChaosRunner runner(env.get(), *schedule, std::move(targets));
  ASSERT_TRUE(runner.Start().ok());

  // Clients read throughout the outage: the quorum protocol masks the lost
  // cloud, so not a single client operation may fail.
  int client_errors = 0;
  while (env->Now() < runner.origin() + schedule->horizon()) {
    auto read = backend.ReadByHash("f", hash);
    if (!read.ok() || *read != data) {
      ++client_errors;
    }
    env->Sleep(20 * kMillisecond);
  }
  runner.Join();
  EXPECT_EQ(client_errors, 0);

  // The outage is over but redundancy is still degraded (objects lost). One
  // background scrub pass restores it — in place where the provider accepts
  // the re-upload, relocated to the spare cloud where it does not.
  ASSERT_TRUE(scrubber.SchedulePass().Get().ok());
  lane.Drain();
  BackgroundScrubber::Stats stats = scrubber.stats();
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.units_scrubbed, 1u);
  EXPECT_EQ(stats.objects_missing, version.stripe_units.size());
  EXPECT_EQ(stats.objects_repaired + stats.objects_relocated,
            version.stripe_units.size());
  EXPECT_EQ(stats.repair_failures, 0u);

  // A verification pass finds every recorded holder hash-valid again.
  auto verify = scrubber.RunPassNow();
  ASSERT_TRUE(verify.ok());
  EXPECT_EQ(verify->objects_missing, 0u);
  EXPECT_TRUE(verify->fully_redundant);
  EXPECT_EQ(*backend.ReadByHash("f", hash), data);
}

// ---------------------------------------------------------------------------
// Lease-delegated caching under the "replica" builtin campaign: a replica
// restart, a cloud outage and a lease-expiry window overlap. Clients must
// fall back to the anchored read path (no new grants while suspended), never
// serve a read older than the last acked write, and keep the error rate
// bounded while the coordination plane is degraded underneath.
// ---------------------------------------------------------------------------

TEST(LeaseChaosTest, ReplicaCampaignFallsBackWithZeroStaleReads) {
  // Real SMR timers (view change, resend) need time to flow: Instant() would
  // fire every client timeout at once. 1000x compression keeps the 8 s
  // campaign at ~10 ms of wall clock.
  auto env = Environment::Scaled(1e-3);
  DeploymentOptions dopts;
  dopts.backend = ScfsBackendKind::kCoc;
  dopts.lease_ttl = 10 * kSecond;  // outlives the campaign horizon
  auto deployment = Deployment::Create(env.get(), dopts);

  ScfsOptions wopts;
  auto writer_or = deployment->Mount("alice", wopts);
  ASSERT_TRUE(writer_or.ok()) << writer_or.status().ToString();
  auto writer = std::move(*writer_or);
  ScfsOptions ropts;
  // Disable the short-term metadata cache on the reader so every stat is
  // answered by the lease (or, while grants are suspended, the anchored
  // path) — the staleness check below must not be blurred by the TTL cache.
  ropts.metadata_cache_ttl = 0;
  auto reader_or = deployment->Mount("alice", ropts);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  auto reader = std::move(*reader_or);

  ASSERT_TRUE(writer->Mkdir("/chaos").ok());
  size_t acked = 1;
  ASSERT_TRUE(writer->WriteFile("/chaos/f", Bytes(acked, 'v')).ok());
  env->Sleep(kSecond);
  // Prime the reader's delegation before the faults start.
  ASSERT_TRUE(reader->Stat("/chaos/f").ok());
  EXPECT_GE(reader->metadata_service().lease_grants(), 1u);

  auto schedule = BuiltinCampaign("replica");
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  ChaosRunner runner(env.get(), *schedule, TargetsFor(deployment.get()));
  ASSERT_TRUE(runner.Start().ok());

  // The lease_expiry fault window of the builtin campaign spans [5 s, 8 s)
  // after the runner's origin. Blocking writes under the concurrent cloud
  // outage can span seconds of virtual time, so instead of relying on op
  // pacing to land reads inside the window, phase 1 mixes writes and reads
  // until the window approaches, then phase 2 jumps the clock to mid-window
  // for a read-only burst (the grants-frozen assertion only applies to
  // reads that start AND finish inside the window).
  const auto window_open = runner.origin() + 5 * kSecond;
  const auto window_close = runner.origin() + 8 * kSecond;
  int write_ops = 0, read_ops = 0, errors = 0, stale_reads = 0;

  // Phase 1: writes racing reads, ending before the lease window opens.
  // Sizes grow monotonically, so once a write of `acked` bytes has been
  // acknowledged, any read returning fewer bytes is a stale read.
  while (env->Now() < runner.origin() + 4 * kSecond) {
    if (writer->WriteFile("/chaos/f", Bytes(acked + 1, 'v')).ok()) {
      ++acked;
    } else {
      ++errors;
    }
    ++write_ops;
    for (int i = 0; i < 4; ++i) {
      auto stat = reader->Stat("/chaos/f");
      ++read_ops;
      if (!stat.ok()) {
        ++errors;
      } else if (stat->size < acked) {
        ++stale_reads;
      }
      env->Sleep(50 * kMillisecond);
    }
  }

  // Phase 2: jump to mid-window. The chaos plane has suspended grants and
  // invalidated every delegation; reads must keep succeeding through the
  // anchored path without installing a single new grant.
  if (env->Now() < window_open + 600 * kMillisecond) {
    env->Sleep(window_open + 600 * kMillisecond - env->Now());
  }
  ASSERT_LT(env->Now(), window_close) << "phase 1 overran the lease window";
  EXPECT_FALSE(deployment->lease_manager()->AllowsGrants());
  const uint64_t grants_at_suspension =
      reader->metadata_service().lease_grants();
  int suspension_reads_ok = 0;
  for (int i = 0; i < 5; ++i) {
    const auto started = env->Now();
    auto stat = reader->Stat("/chaos/f");
    ++read_ops;
    if (!stat.ok()) {
      ++errors;
    } else if (stat->size < acked) {
      ++stale_reads;
    }
    if (started >= window_open && env->Now() < window_close) {
      if (stat.ok()) {
        ++suspension_reads_ok;
      }
      EXPECT_EQ(reader->metadata_service().lease_grants(),
                grants_at_suspension);
    }
    env->Sleep(50 * kMillisecond);
  }
  EXPECT_GT(suspension_reads_ok, 0);

  while (env->Now() < runner.origin() + schedule->horizon()) {
    env->Sleep(100 * kMillisecond);
  }
  runner.Join();

  // No read ever observed metadata older than the last acked write, and the
  // fault windows (all within the f = 1 margins) cost at most a bounded
  // sliver of operations.
  // Phase 1 always completes at least one write+read batch and phase 2
  // always issues 5 reads; under a sanitized (2-3x slower) build the real
  // slowdown feeds through the scaled clock into longer virtual ops, so
  // the floor is the guaranteed minimum, not a throughput expectation.
  EXPECT_EQ(stale_reads, 0);
  EXPECT_GE(read_ops, 9);
  EXPECT_LE(errors, (write_ops + read_ops) / 10 + 1);

  // Once the window closes, delegation resumes: the next read re-grants.
  EXPECT_TRUE(deployment->lease_manager()->AllowsGrants());
  env->Sleep(200 * kMillisecond);
  ASSERT_TRUE(reader->Stat("/chaos/f").ok());
  EXPECT_GT(reader->metadata_service().lease_grants(), grants_at_suspension);
}

}  // namespace
}  // namespace scfs
