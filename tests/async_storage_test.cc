// Tests for the asynchronous storage pipeline across the stack:
// SimulatedCloud's overlapping ObjectStore API, the BlobBackend /
// StorageService async adapters, the rebuilt BackgroundUploader pipeline,
// fsapi CloseAsync/SyncBarrier, and a concurrency stress test asserting that
// DrainBackground() preserves the upload -> metadata -> unlock order of the
// non-blocking mode under many in-flight closes.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cloud/simulated_cloud.h"
#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/scfs/background.h"
#include "src/scfs/blob_backend.h"
#include "src/scfs/deployment.h"
#include "src/scfs/storage_service.h"

namespace scfs {
namespace {

CloudCredentials User() { return {"u"}; }

// ---------------------------------------------------------------------------
// ObjectStore async API
// ---------------------------------------------------------------------------

TEST(ObjectStoreAsyncTest, SimulatedCloudOverlapChargesMaxNotSum) {
  auto env = Environment::Scaled(0.001);
  CloudProfile profile;
  profile.name = "fixed-cloud";
  profile.write_latency = LatencyModel::Fixed(50 * kMillisecond);
  SimulatedCloud cloud(profile, env.get(), 7);

  Environment::ResetThreadCharged();
  std::vector<Future<Status>> puts;
  for (int i = 0; i < 4; ++i) {
    puts.push_back(
        cloud.PutAsync(User(), "k" + std::to_string(i), ToBytes("v")));
  }
  // Dispatch is free; the wait is charged at max-of-children by WhenAll.
  EXPECT_EQ(Environment::ThreadCharged(), 0);
  std::vector<Status> statuses = WhenAll<Status>(std::move(puts)).Get();
  for (const auto& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  EXPECT_EQ(Environment::ThreadCharged(), 50 * kMillisecond);

  for (int i = 0; i < 4; ++i) {
    auto got = cloud.Get(User(), "k" + std::to_string(i));
    ASSERT_TRUE(got.ok());
  }
}

TEST(ObjectStoreAsyncTest, DefaultAdaptersRunInlineWithZeroFutureCharge) {
  // A store that does not override the async API still works: the blocking
  // call runs inline (charging the caller directly) and the future is ready
  // with zero charge, so nothing is double-counted.
  auto env = Environment::Scaled(0.001);
  CloudProfile profile;
  profile.write_latency = LatencyModel::Fixed(20 * kMillisecond);
  SimulatedCloud cloud(profile, env.get(), 7);
  ObjectStore& base = cloud;

  Environment::ResetThreadCharged();
  Future<Status> put = base.ObjectStore::PutAsync(
      User(), "k", std::make_shared<const Bytes>(ToBytes("v")));
  ASSERT_TRUE(put.ready());
  EXPECT_EQ(Environment::ThreadCharged(), 20 * kMillisecond);
  EXPECT_EQ(put.charge(), 0);
  EXPECT_TRUE(put.Get().ok());

  Future<Result<Bytes>> get = base.ObjectStore::GetAsync(User(), "k");
  ASSERT_TRUE(get.ready());
  auto result = get.Get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToString(*result), "v");
}

TEST(ObjectStoreAsyncTest, ListAndDeleteAsyncOverlapControlRoundTrips) {
  auto env = Environment::Scaled(0.001);
  CloudProfile profile;
  profile.name = "fixed-cloud";
  profile.control_latency = LatencyModel::Fixed(40 * kMillisecond);
  SimulatedCloud cloud(profile, env.get(), 7);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        cloud.Put(User(), "p/k" + std::to_string(i), ToBytes("v")).ok());
  }

  // Concurrent LISTs overlap: the waiter pays one control round trip, not
  // four.
  Environment::ResetThreadCharged();
  std::vector<Future<Result<std::vector<ObjectInfo>>>> lists;
  for (int i = 0; i < 4; ++i) {
    lists.push_back(cloud.ListAsync(User(), "p/"));
  }
  auto listed =
      WhenAll<Result<std::vector<ObjectInfo>>>(std::move(lists)).Get();
  EXPECT_EQ(Environment::ThreadCharged(), 40 * kMillisecond);
  for (const auto& result : listed) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), 4u);
  }

  // Async DELETEs fan out the same way, and a subsequent listing sees them.
  std::vector<Future<Status>> deletes;
  for (int i = 0; i < 4; ++i) {
    deletes.push_back(cloud.DeleteAsync(User(), "p/k" + std::to_string(i)));
  }
  for (const auto& s : WhenAll<Status>(std::move(deletes)).Get()) {
    EXPECT_TRUE(s.ok());
  }
  auto after = cloud.ListAsync(User(), "p/").Get();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->empty());
}

// ---------------------------------------------------------------------------
// StorageService / BlobBackend async adapters
// ---------------------------------------------------------------------------

TEST(StorageServiceAsyncTest, PushAsyncThenPrefetchAsyncRoundTrip) {
  auto env = Environment::Instant();
  CloudProfile profile;
  SimulatedCloud cloud(profile, env.get(), 3);
  SingleCloudBackend backend(&cloud, User());
  StorageServiceOptions options;
  StorageService storage(env.get(), &backend, options);

  Bytes data = ToBytes("async payload");
  const std::string hash = "h1";
  Future<Status> push = storage.PushAsync("obj", hash, data, {});
  ASSERT_TRUE(push.Get().ok());
  EXPECT_TRUE(storage.HasLocal("obj", hash));

  auto fetched = storage.PrefetchAsync("obj", hash).Get();
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, data);
}

TEST(StorageServiceAsyncTest, BackendAsyncAdaptersRoundTrip) {
  auto env = Environment::Instant();
  CloudProfile profile;
  SimulatedCloud cloud(profile, env.get(), 3);
  SingleCloudBackend backend(&cloud, User());

  Bytes data = ToBytes("backend async");
  ASSERT_TRUE(backend.WriteVersionAsync("unit", "h2", data, {}).Get().ok());
  auto read = backend.ReadByHashAsync("unit", "h2").Get();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(StorageServiceAsyncTest, ManyConcurrentPushesAllLand) {
  auto env = Environment::Instant();
  CloudProfile profile;
  SimulatedCloud cloud(profile, env.get(), 3);
  SingleCloudBackend backend(&cloud, User());
  StorageServiceOptions options;
  StorageService storage(env.get(), &backend, options);

  std::vector<Future<Status>> pushes;
  for (int i = 0; i < 32; ++i) {
    pushes.push_back(storage.PushAsync("obj" + std::to_string(i),
                                       "h" + std::to_string(i),
                                       ToBytes("d" + std::to_string(i)), {}));
  }
  for (auto& push : pushes) {
    EXPECT_TRUE(push.Get().ok());
  }
  for (int i = 0; i < 32; ++i) {
    auto read = storage.Fetch("obj" + std::to_string(i), "h" + std::to_string(i));
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(ToString(*read), "d" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// BackgroundUploader pipeline
// ---------------------------------------------------------------------------

TEST(BackgroundUploaderTest, SerializedUploaderRunsFifo) {
  BackgroundUploaderOptions options;
  options.serialize = true;
  BackgroundUploader uploader(options);
  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    uploader.Enqueue([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      return OkStatus();
    });
  }
  uploader.Drain();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(BackgroundUploaderTest, ChainsPreserveStageOrderAcrossConcurrency) {
  // 40 concurrent 3-stage chains (the shape of a non-blocking close: flush,
  // upload, publish+unlock). Stages of one chain must run in order; chains
  // may interleave freely.
  BackgroundUploader uploader;
  constexpr int kChains = 40;
  std::mutex mu;
  std::vector<std::pair<int, int>> log;  // (chain, stage)
  for (int c = 0; c < kChains; ++c) {
    auto record = [&, c](int stage) {
      std::lock_guard<std::mutex> lock(mu);
      log.emplace_back(c, stage);
      return OkStatus();
    };
    Future<Status> s0 = uploader.Enqueue([record] { return record(0); });
    Future<Status> s1 =
        uploader.EnqueueAfter(s0, [record] { return record(1); });
    uploader.EnqueueAfter(s1, [record] { return record(2); });
  }
  uploader.Drain();
  ASSERT_EQ(log.size(), kChains * 3u);
  std::vector<int> next_stage(kChains, 0);
  for (const auto& [chain, stage] : log) {
    EXPECT_EQ(stage, next_stage[chain]) << "chain " << chain;
    next_stage[chain] = stage + 1;
  }
}

TEST(BackgroundUploaderTest, BoundedDepthAppliesBackpressure) {
  BackgroundUploaderOptions options;
  options.max_depth = 2;
  BackgroundUploader uploader(options);

  Promise<int> gate;
  Future<int> gate_future = gate.future();
  for (int i = 0; i < 2; ++i) {
    uploader.Enqueue([gate_future] {
      gate_future.Wait();
      return OkStatus();
    });
  }
  std::atomic<bool> third_enqueued{false};
  std::thread producer([&] {
    uploader.Enqueue([] { return OkStatus(); });
    third_enqueued.store(true);
  });
  // The third stage must block while two are pending.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_enqueued.load());
  gate.Set(1);
  producer.join();
  EXPECT_TRUE(third_enqueued.load());
  uploader.Drain();
}

TEST(BackgroundUploaderTest, ReservedChainsNeverDeadlockUnderBackpressure) {
  // The close-pipeline shape: stage 2 is registered before its own stage 1
  // exists. With per-stage backpressure this deadlocks once max_depth
  // producers hold a stage-2 slot while blocking on stage 1; Reserve(2)
  // admits the whole chain atomically.
  BackgroundUploaderOptions options;
  options.max_depth = 2;  // one chain's worth: maximum contention
  BackgroundUploader uploader(options);
  constexpr int kThreads = 8;
  std::atomic<int> completed{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 4; ++i) {
        uploader.Reserve(2);
        Promise<Status> gate;
        Future<Status> stage2 = uploader.EnqueueAfterReserved(
            gate.future(), [&] {
              completed.fetch_add(1);
              return OkStatus();
            });
        Future<Status> stage1 = uploader.EnqueueReserved([&] {
          completed.fetch_add(1);
          return OkStatus();
        });
        stage1.OnReady([gate](const Status& s, VirtualDuration c) {
          gate.Set(s, c);
        });
        (void)stage2;
      }
    });
  }
  for (auto& p : producers) {
    p.join();
  }
  uploader.Drain();
  EXPECT_EQ(completed.load(), kThreads * 4 * 2);
}

// ---------------------------------------------------------------------------
// fsapi CloseAsync / SyncBarrier and the non-blocking close pipeline
// ---------------------------------------------------------------------------

class AsyncCloseTest : public ::testing::TestWithParam<ScfsBackendKind> {
 protected:
  AsyncCloseTest() : env_(Environment::Instant()) {
    DeploymentOptions options;
    options.backend = GetParam();
    options.zero_latency = true;
    deployment_ = Deployment::Create(env_.get(), options);
  }

  std::unique_ptr<ScfsFileSystem> MountAgent(
      const std::string& user, ScfsMode mode = ScfsMode::kNonBlocking) {
    ScfsOptions options;
    options.mode = mode;
    auto fs = deployment_->Mount(user, options);
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    return std::move(*fs);
  }

  std::unique_ptr<Environment> env_;
  std::unique_ptr<Deployment> deployment_;
};

TEST_P(AsyncCloseTest, CloseAsyncCompletesAndPublishes) {
  auto alice = MountAgent("alice");
  auto fh = alice->Open("/f", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(alice->Write(*fh, 0, ToBytes("async close")).ok());
  Future<Status> closed = alice->CloseAsync(*fh);
  // Level-1 future: the handle is already retired.
  EXPECT_EQ(alice->Read(*fh, 0, 4).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_TRUE(closed.Get().ok());
  // The writer reads its own close immediately, before any barrier.
  auto own = alice->ReadFile("/f");
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(ToString(*own), "async close");

  ASSERT_TRUE(alice->SyncBarrier().ok());
  // A second machine logged in as the same user sees the published close.
  auto bob = MountAgent("alice");
  auto stat = bob->Stat("/f");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 11u);
}

TEST_P(AsyncCloseTest, BlockingModeCloseAsyncIsFullyDurable) {
  auto alice = MountAgent("alice", ScfsMode::kBlocking);
  auto fh = alice->Open("/f", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(alice->Write(*fh, 0, ToBytes("blocking")).ok());
  ASSERT_TRUE(alice->CloseAsync(*fh).Get().ok());
  // Durability 2/3 reached: a second agent sees the file with no barrier.
  auto bob = MountAgent("alice", ScfsMode::kBlocking);
  auto read = bob->ReadFile("/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(*read), "blocking");
}

TEST_P(AsyncCloseTest, FailedWriteDoesNotLeaveLockHeld) {
  auto alice = MountAgent("alice", ScfsMode::kBlocking);
  // Make the cloud backend unavailable so the close-time push fails.
  for (unsigned i = 0; i < deployment_->cloud_count(); ++i) {
    deployment_->cloud(i)->faults().SetUnavailable(true);
  }
  auto fh = alice->Open("/f", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(alice->Write(*fh, 0, ToBytes("doomed")).ok());
  EXPECT_FALSE(alice->Close(*fh).ok());
  for (unsigned i = 0; i < deployment_->cloud_count(); ++i) {
    deployment_->cloud(i)->faults().SetUnavailable(false);
  }
  // The lock must have been released by the failed close.
  auto retry = alice->Open("/f", kOpenWrite);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  ASSERT_TRUE(alice->Write(*retry, 0, ToBytes("recovered")).ok());
  ASSERT_TRUE(alice->Close(*retry).ok());
}

TEST_P(AsyncCloseTest, ReopenWhileUploadingPublishesClosesInOrder) {
  // The lock service is re-entrant, so a file may be reopened while the
  // previous close's chain is still in flight; the two closes must publish
  // in order or the stale metadata would win.
  auto alice = MountAgent("alice", ScfsMode::kNonBlocking);
  for (int round = 0; round < 10; ++round) {
    const std::string path = "/doc" + std::to_string(round);
    auto fh1 = alice->Open(path, kOpenWrite | kOpenCreate);
    ASSERT_TRUE(fh1.ok());
    ASSERT_TRUE(alice->Write(*fh1, 0, ToBytes("v1")).ok());
    Future<Status> close1 = alice->CloseAsync(*fh1);
    auto fh2 = alice->Open(path, kOpenWrite);
    ASSERT_TRUE(fh2.ok()) << "re-entrant lock must allow the reopen";
    ASSERT_TRUE(alice->Write(*fh2, 0, ToBytes("v2-final")).ok());
    Future<Status> close2 = alice->CloseAsync(*fh2);
    EXPECT_TRUE(close1.Get().ok());
    EXPECT_TRUE(close2.Get().ok());
  }
  alice->DrainBackground();
  auto reader = MountAgent("alice");
  for (int round = 0; round < 10; ++round) {
    auto read = reader->ReadFile("/doc" + std::to_string(round));
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(ToString(*read), "v2-final") << "stale close overwrote newer";
  }
}

TEST_P(AsyncCloseTest, BlockingCloseAsyncThenUnlinkDoesNotResurrect) {
  auto alice = MountAgent("alice", ScfsMode::kBlocking);
  auto fh = alice->Open("/gone", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(alice->Write(*fh, 0, ToBytes("short-lived")).ok());
  Future<Status> closed = alice->CloseAsync(*fh);
  // Unlink races the in-flight close publication; it must serialize behind
  // it, not be resurrected by it.
  ASSERT_TRUE(alice->Unlink("/gone").ok());
  EXPECT_TRUE(closed.Get().ok());
  alice->DrainBackground();
  EXPECT_EQ(alice->Stat("/gone").status().code(), ErrorCode::kNotFound);
}

// The stress test of the satellite: many in-flight asynchronous closes, then
// DrainBackground(); every file must have completed its full
// upload -> metadata -> unlock chain, in that order.
TEST_P(AsyncCloseTest, DrainBackgroundPreservesChainOrderUnderManyCloses) {
  constexpr int kFiles = 32;
  auto alice = MountAgent("alice", ScfsMode::kNonBlocking);

  std::vector<Future<Status>> level1;
  for (int i = 0; i < kFiles; ++i) {
    const std::string path = "/f" + std::to_string(i);
    auto fh = alice->Open(path, kOpenWrite | kOpenCreate);
    ASSERT_TRUE(fh.ok());
    ASSERT_TRUE(
        alice->Write(*fh, 0, ToBytes("content-" + std::to_string(i))).ok());
    level1.push_back(alice->CloseAsync(*fh));
  }
  // All closes dispatched; every level-1 future completes successfully.
  for (auto& f : level1) {
    EXPECT_TRUE(f.Get().ok());
  }

  alice->DrainBackground();
  EXPECT_EQ(alice->uploader().pending(), 0u);

  // After the barrier the full chain has run for every file:
  //  - upload happened (a second agent can fetch the bytes from the cloud),
  //  - metadata was published (the second agent's stat sees the version),
  //  - the lock was released (the second agent can open for writing) —
  // and because the chain is ordered, metadata was never visible before the
  // upload nor the lock released before the metadata.
  auto bob = MountAgent("alice", ScfsMode::kNonBlocking);
  for (int i = 0; i < kFiles; ++i) {
    const std::string path = "/f" + std::to_string(i);
    auto read = bob->ReadFile(path);
    ASSERT_TRUE(read.ok()) << path << ": " << read.status().ToString();
    EXPECT_EQ(ToString(*read), "content-" + std::to_string(i));
    auto fh = bob->Open(path, kOpenWrite);
    ASSERT_TRUE(fh.ok()) << path << ": lock not released";
    ASSERT_TRUE(bob->Close(*fh).ok());
  }
  bob->DrainBackground();
}

INSTANTIATE_TEST_SUITE_P(Backends, AsyncCloseTest,
                         ::testing::Values(ScfsBackendKind::kAws,
                                           ScfsBackendKind::kCoc));

}  // namespace
}  // namespace scfs
