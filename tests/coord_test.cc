// Tests for the coordination service: command serialization, tuple-space
// semantics (entries, versions, ACLs, ephemeral locks, the rename trigger)
// and the replicated SMR cluster under crash and byzantine faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/coord/command.h"
#include "src/coord/lease.h"
#include "src/coord/local_coordination.h"
#include "src/coord/partitioned_coordination.h"
#include "src/coord/smr.h"
#include "src/coord/tuple_space.h"

namespace scfs {
namespace {

TEST(CommandTest, EncodeDecodeRoundTrip) {
  CoordCommand cmd;
  cmd.op = CoordOp::kCompareAndSwap;
  cmd.client = "alice";
  cmd.key = "/meta/file";
  cmd.value = ToBytes("payload");
  cmd.aux = "extra";
  cmd.a = 42;
  cmd.b = 7;
  cmd.route_epoch = 9;
  auto decoded = CoordCommand::Decode(cmd.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, CoordOp::kCompareAndSwap);
  EXPECT_EQ(decoded->client, "alice");
  EXPECT_EQ(decoded->key, "/meta/file");
  EXPECT_EQ(ToString(decoded->value), "payload");
  EXPECT_EQ(decoded->aux, "extra");
  EXPECT_EQ(decoded->a, 42u);
  EXPECT_EQ(decoded->b, 7u);
  EXPECT_EQ(decoded->route_epoch, 9u);
}

TEST(CommandTest, ReplyRoundTripWithEntries) {
  CoordReply reply;
  reply.code = ErrorCode::kOk;
  reply.value = ToBytes("v");
  reply.a = 3;
  reply.entries.push_back({"k1", ToBytes("e1"), 1});
  reply.entries.push_back({"k2", ToBytes("e2"), 2});
  auto decoded = CoordReply::Decode(reply.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->a, 3u);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[1].key, "k2");
  EXPECT_EQ(decoded->entries[1].version, 2u);
}

TEST(CommandTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(CoordCommand::Decode({}).ok());
  EXPECT_FALSE(CoordCommand::Decode({1, 2, 3}).ok());
  EXPECT_FALSE(CoordReply::Decode({}).ok());
}

CoordCommand Cmd(CoordOp op, const std::string& client, const std::string& key,
                 const Bytes& value = {}, uint64_t a = 0, uint64_t b = 0,
                 const std::string& aux = "") {
  CoordCommand cmd;
  cmd.op = op;
  cmd.client = client;
  cmd.key = key;
  cmd.value = value;
  cmd.a = a;
  cmd.b = b;
  cmd.aux = aux;
  return cmd;
}

TEST(TupleSpaceTest, WriteReadVersionBump) {
  TupleSpace space;
  auto r1 = space.Apply(0, Cmd(CoordOp::kWrite, "alice", "k", ToBytes("v1")));
  EXPECT_TRUE(r1.ok());
  EXPECT_EQ(r1.a, 1u);
  auto r2 = space.Apply(0, Cmd(CoordOp::kWrite, "alice", "k", ToBytes("v2")));
  EXPECT_EQ(r2.a, 2u);
  auto read = space.Apply(0, Cmd(CoordOp::kRead, "alice", "k"));
  EXPECT_EQ(ToString(read.value), "v2");
  EXPECT_EQ(read.a, 2u);
}

TEST(TupleSpaceTest, ConditionalCreate) {
  TupleSpace space;
  EXPECT_TRUE(
      space.Apply(0, Cmd(CoordOp::kConditionalCreate, "a", "k", ToBytes("v")))
          .ok());
  EXPECT_EQ(
      space.Apply(0, Cmd(CoordOp::kConditionalCreate, "a", "k", ToBytes("w")))
          .code,
      ErrorCode::kAlreadyExists);
}

TEST(TupleSpaceTest, CompareAndSwap) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "k", ToBytes("v1")));
  // Wrong version.
  EXPECT_EQ(
      space.Apply(0, Cmd(CoordOp::kCompareAndSwap, "a", "k", ToBytes("x"), 9))
          .code,
      ErrorCode::kConflict);
  // Right version.
  auto r = space.Apply(0, Cmd(CoordOp::kCompareAndSwap, "a", "k",
                              ToBytes("v2"), 1));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.a, 2u);
  EXPECT_EQ(ToString(space.Apply(0, Cmd(CoordOp::kRead, "a", "k")).value),
            "v2");
}

TEST(TupleSpaceTest, RemoveAndNotFound) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "k", ToBytes("v")));
  EXPECT_TRUE(space.Apply(0, Cmd(CoordOp::kRemove, "a", "k")).ok());
  EXPECT_EQ(space.Apply(0, Cmd(CoordOp::kRead, "a", "k")).code,
            ErrorCode::kNotFound);
  EXPECT_EQ(space.Apply(0, Cmd(CoordOp::kRemove, "a", "k")).code,
            ErrorCode::kNotFound);
}

TEST(TupleSpaceTest, ReadPrefix) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "/m/a", ToBytes("1")));
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "/m/b", ToBytes("2")));
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "/x/c", ToBytes("3")));
  auto r = space.Apply(0, Cmd(CoordOp::kReadPrefix, "a", "/m/"));
  ASSERT_EQ(r.entries.size(), 2u);
  EXPECT_EQ(r.entries[0].key, "/m/a");
  EXPECT_EQ(r.entries[1].key, "/m/b");
}

TEST(TupleSpaceTest, EntryAclEnforced) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "k", ToBytes("v")));
  // Bob cannot read or write.
  EXPECT_EQ(space.Apply(0, Cmd(CoordOp::kRead, "bob", "k")).code,
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(space.Apply(0, Cmd(CoordOp::kWrite, "bob", "k", ToBytes("w"))).code,
            ErrorCode::kPermissionDenied);
  // Grant read.
  EXPECT_TRUE(space
                  .Apply(0, Cmd(CoordOp::kSetEntryAcl, "alice", "k", {},
                                kCoordPermRead, 0, "bob"))
                  .ok());
  EXPECT_TRUE(space.Apply(0, Cmd(CoordOp::kRead, "bob", "k")).ok());
  EXPECT_EQ(space.Apply(0, Cmd(CoordOp::kWrite, "bob", "k", ToBytes("w"))).code,
            ErrorCode::kPermissionDenied);
  // Only the owner can change ACLs.
  EXPECT_EQ(space
                .Apply(0, Cmd(CoordOp::kSetEntryAcl, "bob", "k", {},
                              kCoordPermRead | kCoordPermWrite, 0, "bob"))
                .code,
            ErrorCode::kPermissionDenied);
  // ReadPrefix filters unreadable entries.
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "k2", ToBytes("v2")));
  auto r = space.Apply(0, Cmd(CoordOp::kReadPrefix, "bob", "k"));
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].key, "k");
}

TEST(TupleSpaceTest, LockExclusionAndToken) {
  TupleSpace space;
  auto l1 = space.Apply(0, Cmd(CoordOp::kTryLock, "alice", "L", {}, kSecond));
  ASSERT_TRUE(l1.ok());
  EXPECT_GT(l1.a, 0u);
  // Another client is rejected.
  EXPECT_EQ(space.Apply(10, Cmd(CoordOp::kTryLock, "bob", "L", {}, kSecond)).code,
            ErrorCode::kBusy);
  // Same client re-acquires (re-entrant) with the same token.
  auto l2 = space.Apply(10, Cmd(CoordOp::kTryLock, "alice", "L", {}, kSecond));
  EXPECT_TRUE(l2.ok());
  EXPECT_EQ(l2.a, l1.a);
  // Unlock with wrong token fails; right token succeeds.
  EXPECT_EQ(space.Apply(20, Cmd(CoordOp::kUnlock, "alice", "L", {}, 0, 999)).code,
            ErrorCode::kNotFound);
  EXPECT_TRUE(space.Apply(20, Cmd(CoordOp::kUnlock, "alice", "L", {}, 0, l1.a))
                  .ok());
  EXPECT_TRUE(space.Apply(30, Cmd(CoordOp::kTryLock, "bob", "L", {}, kSecond))
                  .ok());
}

TEST(TupleSpaceTest, LockLeaseExpiresEphemeral) {
  // Paper §2.5.1: lock entries are ephemeral so a crashed client's lock
  // disappears automatically.
  TupleSpace space;
  auto l1 = space.Apply(0, Cmd(CoordOp::kTryLock, "alice", "L", {}, kSecond));
  ASSERT_TRUE(l1.ok());
  // Before expiry bob fails; after expiry bob succeeds.
  EXPECT_EQ(space.Apply(kSecond - 1, Cmd(CoordOp::kTryLock, "bob", "L", {}, kSecond))
                .code,
            ErrorCode::kBusy);
  EXPECT_TRUE(
      space.Apply(kSecond + 1, Cmd(CoordOp::kTryLock, "bob", "L", {}, kSecond))
          .ok());
}

TEST(TupleSpaceTest, RenewExtendsLease) {
  TupleSpace space;
  auto l1 = space.Apply(0, Cmd(CoordOp::kTryLock, "alice", "L", {}, kSecond));
  ASSERT_TRUE(l1.ok());
  EXPECT_TRUE(space
                  .Apply(kSecond / 2, Cmd(CoordOp::kRenewLock, "alice", "L", {},
                                          2 * kSecond, l1.a))
                  .ok());
  EXPECT_EQ(space
                .Apply(2 * kSecond, Cmd(CoordOp::kTryLock, "bob", "L", {},
                                        kSecond))
                .code,
            ErrorCode::kBusy);
}

TEST(TupleSpaceTest, RenamePrefixMovesSubtree) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "/m/dir/f1", ToBytes("1")));
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "/m/dir/sub/f2", ToBytes("2")));
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "/m/other", ToBytes("3")));
  auto r = space.Apply(
      0, Cmd(CoordOp::kRenamePrefix, "a", "/m/dir", {}, 0, 0, "/m/renamed"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.a, 2u);
  EXPECT_EQ(space.Apply(0, Cmd(CoordOp::kRead, "a", "/m/dir/f1")).code,
            ErrorCode::kNotFound);
  EXPECT_EQ(ToString(space.Apply(0, Cmd(CoordOp::kRead, "a", "/m/renamed/f1"))
                         .value),
            "1");
  EXPECT_EQ(
      ToString(space.Apply(0, Cmd(CoordOp::kRead, "a", "/m/renamed/sub/f2"))
                   .value),
      "2");
  EXPECT_TRUE(space.Apply(0, Cmd(CoordOp::kRead, "a", "/m/other")).ok());
}

TEST(TupleSpaceTest, SnapshotRestoreRoundTrip) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "/m/a", ToBytes("v1")));
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "/m/a", ToBytes("v2")));
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "/m/b", ToBytes("w")));
  space.Apply(0, Cmd(CoordOp::kSetEntryAcl, "alice", "/m/a", {},
                     kCoordPermRead, 0, "bob"));
  auto lock = space.Apply(10, Cmd(CoordOp::kTryLock, "carol", "L", {}, kSecond));
  ASSERT_TRUE(lock.ok());

  Bytes snapshot = space.Snapshot();
  TupleSpace restored;
  ASSERT_TRUE(restored.Restore(snapshot));

  // Entries, versions, ACLs and stored-bytes accounting survive.
  EXPECT_EQ(restored.entry_count(), space.entry_count());
  EXPECT_EQ(restored.stored_bytes(), space.stored_bytes());
  auto read = restored.Apply(10, Cmd(CoordOp::kRead, "bob", "/m/a"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(read.value), "v2");
  EXPECT_EQ(read.a, 2u);
  // Locks survive with their leases and tokens: carol's lock still excludes
  // bob before expiry, and unlocking needs the original token.
  EXPECT_EQ(restored.Apply(20, Cmd(CoordOp::kTryLock, "bob", "L", {}, kSecond))
                .code,
            ErrorCode::kBusy);
  EXPECT_TRUE(
      restored.Apply(20, Cmd(CoordOp::kUnlock, "carol", "L", {}, 0, lock.a))
          .ok());
  // The token counter is part of the state: a fresh lock on the restored
  // space gets a token the original space would also have issued next.
  auto next = restored.Apply(30, Cmd(CoordOp::kTryLock, "dave", "M", {},
                                     kSecond));
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next.a, lock.a);
}

TEST(TupleSpaceTest, SnapshotDigestDeterministicAndStateSensitive) {
  TupleSpace a;
  TupleSpace b;
  // Same logical state reached through different histories (b overwrites).
  a.Apply(0, Cmd(CoordOp::kWrite, "alice", "k", ToBytes("v")));
  b.Apply(0, Cmd(CoordOp::kWrite, "alice", "k", ToBytes("x")));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  b.Apply(0, Cmd(CoordOp::kWrite, "alice", "k", ToBytes("v")));
  // Versions now differ (1 vs 2), so digests still differ...
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  // ...but a restored snapshot reproduces the digest exactly.
  TupleSpace c;
  ASSERT_TRUE(c.Restore(b.Snapshot()));
  EXPECT_EQ(c.StateDigest(), b.StateDigest());
}

TEST(TupleSpaceTest, RestoreRejectsGarbageAndKeepsState) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "k", ToBytes("v")));
  Bytes before = space.StateDigest();
  EXPECT_FALSE(space.Restore(ToBytes("garbage")));
  Bytes truncated = space.Snapshot();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(space.Restore(truncated));
  EXPECT_EQ(space.StateDigest(), before);
  EXPECT_TRUE(space.Apply(0, Cmd(CoordOp::kRead, "alice", "k")).ok());
}

TEST(TupleSpaceTest, StoredBytesAccounting) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "key", ToBytes("12345")));
  EXPECT_EQ(space.stored_bytes(), 3u + 5u);
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "key", ToBytes("1")));
  EXPECT_EQ(space.stored_bytes(), 3u + 1u);
  space.Apply(0, Cmd(CoordOp::kRemove, "a", "key"));
  EXPECT_EQ(space.stored_bytes(), 0u);
}

TEST(TupleSpaceTest, LeaseGrantSnapshotsPrefixAndRevokesOnMutation) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "m:/d/a", ToBytes("1")));
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "m:/d/b", ToBytes("2")));
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "m:/e/c", ToBytes("3")));

  // Grant: key = prefix, a = TTL, aux = holder session. The reply doubles as
  // the snapshot read and carries the lease epoch + expiry.
  CoordReply grant = space.Apply(
      10, Cmd(CoordOp::kLeaseAcquire, "alice", "m:/d/", {}, 100, 0, "s1"));
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant.entries.size(), 2u);
  EXPECT_EQ(grant.a, 110u);  // now + TTL on the ordered clock
  EXPECT_EQ(space.lease_count(), 1u);

  // A mutation outside the prefix revokes nothing.
  CoordReply other =
      space.Apply(20, Cmd(CoordOp::kWrite, "alice", "m:/e/c", ToBytes("x")));
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other.revoked.empty());
  EXPECT_EQ(space.lease_count(), 1u);

  // A mutation under the prefix revokes in its own ordered slot and reports
  // prefix + epoch in its reply, so the submitter invalidates holders before
  // the ack.
  CoordReply write =
      space.Apply(30, Cmd(CoordOp::kWrite, "alice", "m:/d/a", ToBytes("y")));
  ASSERT_TRUE(write.ok());
  ASSERT_EQ(write.revoked.size(), 1u);
  EXPECT_EQ(write.revoked[0].prefix, "m:/d/");
  EXPECT_GT(write.revoked[0].epoch, 0u);
  EXPECT_EQ(space.lease_count(), 0u);
}

TEST(TupleSpaceTest, LeaseRenewalIsExtendOnly) {
  TupleSpace space;
  ASSERT_TRUE(
      space.Apply(0, Cmd(CoordOp::kLeaseAcquire, "alice", "m:/d/", {}, 100, 0,
                         "s1"))
          .ok());
  // A second holder with a shorter TTL shares the record; the expiry a
  // holder was already promised must never shrink.
  CoordReply renew = space.Apply(
      10, Cmd(CoordOp::kLeaseAcquire, "alice", "m:/d/", {}, 20, 0, "s2"));
  ASSERT_TRUE(renew.ok());
  EXPECT_EQ(renew.a, 100u);  // still the first grant's horizon
  EXPECT_EQ(space.lease_count(), 1u);
  // A later renewal that reaches further extends it.
  CoordReply extend = space.Apply(
      50, Cmd(CoordOp::kLeaseAcquire, "alice", "m:/d/", {}, 100, 0, "s1"));
  EXPECT_EQ(extend.a, 150u);
}

TEST(TupleSpaceTest, LeaseExpiresAtOrderedTimeNotWallClock) {
  TupleSpace space;
  ASSERT_TRUE(
      space.Apply(0, Cmd(CoordOp::kLeaseAcquire, "alice", "m:/d/", {}, 100, 0,
                         "s1"))
          .ok());
  // Expiry happens at command-execution time (part of the deterministic
  // state machine): the first command ordered past the horizon drops the
  // lease, and a mutation then has nothing to revoke — the holder stopped
  // serving on its own at the same virtual instant.
  CoordReply write =
      space.Apply(200, Cmd(CoordOp::kWrite, "alice", "m:/d/a", ToBytes("v")));
  ASSERT_TRUE(write.ok());
  EXPECT_TRUE(write.revoked.empty());
  EXPECT_EQ(space.lease_count(), 0u);
}

TEST(TupleSpaceTest, LeaseReleaseDropsOnlyLastHolder) {
  TupleSpace space;
  ASSERT_TRUE(
      space.Apply(0, Cmd(CoordOp::kLeaseAcquire, "alice", "m:/d/", {}, 100, 0,
                         "s1"))
          .ok());
  ASSERT_TRUE(
      space.Apply(0, Cmd(CoordOp::kLeaseAcquire, "alice", "m:/d/", {}, 100, 0,
                         "s2"))
          .ok());
  EXPECT_EQ(space.lease_count(), 1u);  // shared record
  ASSERT_TRUE(
      space.Apply(10, Cmd(CoordOp::kLeaseRelease, "alice", "m:/d/", {}, 0, 0,
                          "s1"))
          .ok());
  EXPECT_EQ(space.lease_count(), 1u);  // s2 still holds
  ASSERT_TRUE(
      space.Apply(10, Cmd(CoordOp::kLeaseRelease, "alice", "m:/d/", {}, 0, 0,
                          "s2"))
          .ok());
  EXPECT_EQ(space.lease_count(), 0u);
}

TEST(TupleSpaceTest, RenameRevokesLeasesOnBothSubtrees) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "a", "m:/src/f", ToBytes("1")));
  ASSERT_TRUE(space
                  .Apply(0, Cmd(CoordOp::kLeaseAcquire, "a", "m:/src/", {},
                                100, 0, "s1"))
                  .ok());
  ASSERT_TRUE(space
                  .Apply(0, Cmd(CoordOp::kLeaseAcquire, "a", "m:/dst/", {},
                                100, 0, "s2"))
                  .ok());
  // The rename mutates both subtrees: a holder serving either the source
  // (now gone) or the destination (now populated) must be revoked.
  CoordReply rename = space.Apply(
      10, Cmd(CoordOp::kRenamePrefix, "a", "m:/src/", {}, 0, 0, "m:/dst/"));
  ASSERT_TRUE(rename.ok());
  EXPECT_EQ(rename.revoked.size(), 2u);
  EXPECT_EQ(space.lease_count(), 0u);
}

TEST(TupleSpaceTest, LeaseStateRidesSnapshot) {
  TupleSpace space;
  space.Apply(0, Cmd(CoordOp::kWrite, "alice", "m:/d/a", ToBytes("1")));
  CoordReply grant = space.Apply(
      0, Cmd(CoordOp::kLeaseAcquire, "alice", "m:/d/", {}, 100, 0, "s1"));
  ASSERT_TRUE(grant.ok());

  // A rejoining replica (or a view change's state transfer) restores the
  // outstanding grants with the snapshot: the restored space still knows the
  // lease and still revokes it — with the same epoch — on the next mutation.
  TupleSpace restored;
  ASSERT_TRUE(restored.Restore(space.Snapshot()));
  EXPECT_EQ(restored.lease_count(), 1u);
  CoordReply write = restored.Apply(
      10, Cmd(CoordOp::kWrite, "alice", "m:/d/a", ToBytes("2")));
  ASSERT_TRUE(write.ok());
  ASSERT_EQ(write.revoked.size(), 1u);
  EXPECT_EQ(write.revoked[0].prefix, "m:/d/");
  ByteReader epoch_reader(grant.value);
  uint64_t granted_epoch = 0;
  ASSERT_TRUE(epoch_reader.ReadU64(&granted_epoch));
  EXPECT_EQ(write.revoked[0].epoch, granted_epoch);
}

TEST(LocalCoordinationTest, TypedWrappers) {
  auto env = Environment::Instant();
  LocalCoordination coord(env.get(), LatencyModel::None());
  ASSERT_TRUE(coord.Write("alice", "k", ToBytes("v")).ok());
  auto entry = coord.Read("alice", "k");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(ToString(entry->value), "v");
  EXPECT_EQ(entry->version, 1u);

  auto cas = coord.CompareAndSwap("alice", "k", ToBytes("v2"), 1);
  ASSERT_TRUE(cas.ok());
  EXPECT_EQ(*cas, 2u);

  auto lock = coord.TryLock("alice", "L", kSecond);
  ASSERT_TRUE(lock.ok());
  EXPECT_EQ(coord.TryLock("bob", "L", kSecond).status().code(),
            ErrorCode::kBusy);
  ASSERT_TRUE(coord.Unlock("alice", "L", lock->token).ok());

  ASSERT_TRUE(coord.GrantEntryAccess("alice", "k", "bob", true, false).ok());
  EXPECT_TRUE(coord.Read("bob", "k").ok());

  ASSERT_TRUE(coord.Remove("alice", "k").ok());
  EXPECT_EQ(coord.Read("alice", "k").status().code(), ErrorCode::kNotFound);
}

TEST(LocalCoordinationTest, LatencyCharged) {
  auto env = Environment::Scaled(1e-5);
  LocalCoordination coord(env.get(), LatencyModel::Fixed(40 * kMillisecond));
  VirtualTime t0 = env->Now();
  coord.Write("a", "k", ToBytes("v"));
  // One op = request + reply = 2 x 40 ms.
  EXPECT_GE(env->Now() - t0, 80 * kMillisecond);
}

TEST(LocalCoordinationTest, StateDigestTracksState) {
  auto env = Environment::Instant();
  LocalCoordination coord(env.get(), LatencyModel::None());
  Bytes empty_digest = coord.StateDigest();
  EXPECT_FALSE(empty_digest.empty());
  ASSERT_TRUE(coord.Write("alice", "k", ToBytes("v")).ok());
  Bytes after_write = coord.StateDigest();
  EXPECT_NE(after_write, empty_digest);
  ASSERT_TRUE(coord.Remove("alice", "k").ok());
  EXPECT_EQ(coord.StateDigest(), empty_digest);
}

TEST(LocalCoordinationTest, UnavailabilityInjected) {
  auto env = Environment::Instant();
  LocalCoordination coord(env.get(), LatencyModel::None());
  coord.faults().SetUnavailable(true);
  EXPECT_EQ(coord.Write("a", "k", ToBytes("v")).code(),
            ErrorCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// SMR cluster tests. These run with a scaled environment so virtual
// timeouts map to microseconds of real time.
// ---------------------------------------------------------------------------

SmrConfig FastSmrConfig(bool byzantine) {
  SmrConfig config;
  config.f = 1;
  config.byzantine = byzantine;
  config.client_link = LatencyModel::Fixed(2 * kMillisecond);
  config.replica_link = LatencyModel::Fixed(kMillisecond);
  // Generous against *real* scheduling noise: most suites run at
  // Environment::Scaled(1e-3), where a virtual second is one real
  // millisecond — a TSan/ASan-instrumented consensus round can eat
  // hundreds of real microseconds, and sub-second virtual timeouts then
  // fire spurious view changes. Failure-detection latency is virtual and
  // costs nothing real, so err high; tests that need tight timeouts
  // (e.g. the retransmission storm) override these explicitly.
  config.client_timeout = 30 * kSecond;
  config.order_timeout = 5 * kSecond;
  return config;
}

TEST(SmrClusterTest, BasicExecute) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), FastSmrConfig(true));
  ASSERT_TRUE(coord.Write("alice", "k", ToBytes("v")).ok());
  auto entry = coord.Read("alice", "k");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(ToString(entry->value), "v");
}

TEST(SmrClusterTest, AllReplicasConverge) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), FastSmrConfig(true));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        coord.Write("alice", "k" + std::to_string(i), ToBytes("v")).ok());
  }
  // Stragglers converge *eventually*: the client returns at the reply
  // quorum, so the slowest replica may still be executing. Poll with a
  // generous deadline instead of one fixed sleep (which is sensitive to
  // real-thread scheduling), then assert.
  auto& cluster = coord.cluster();
  auto converged = [&] {
    for (unsigned r = 0; r < cluster.replica_count(); ++r) {
      if (cluster.executed_count(r) != 20u) {
        return false;
      }
    }
    return true;
  };
  for (int spin = 0; spin < 100 && !converged(); ++spin) {
    env->Sleep(200 * kMillisecond);
  }
  for (unsigned r = 0; r < cluster.replica_count(); ++r) {
    EXPECT_EQ(cluster.executed_count(r), 20u) << "replica " << r;
  }
}

TEST(SmrClusterTest, ConcurrentClientsAllSucceed) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), FastSmrConfig(true));
  constexpr int kThreads = 4;
  constexpr int kOps = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "t" + std::to_string(t) + "i" + std::to_string(i);
        if (!coord.Write("client" + std::to_string(t), key, ToBytes("v")).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  auto listed = coord.ReadPrefix("client0", "t0");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), static_cast<size_t>(kOps));
}

TEST(SmrClusterTest, ByzantineReplyOutvoted) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), FastSmrConfig(true));
  coord.cluster().SetReplicaByzantine(2, true);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(coord.Write("a", "k" + std::to_string(i), ToBytes("v")).ok());
    auto entry = coord.Read("a", "k" + std::to_string(i));
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(ToString(entry->value), "v");
  }
}

TEST(SmrClusterTest, NonLeaderCrashTolerated) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), FastSmrConfig(true));
  ASSERT_TRUE(coord.Write("a", "k0", ToBytes("v")).ok());
  coord.cluster().CrashReplica(3);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(coord.Write("a", "k" + std::to_string(i), ToBytes("v")).ok());
  }
}

TEST(SmrClusterTest, LeaderCrashTriggersViewChange) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), FastSmrConfig(true));
  ASSERT_TRUE(coord.Write("a", "before", ToBytes("v")).ok());
  EXPECT_EQ(coord.cluster().current_view(), 0u);
  coord.cluster().CrashReplica(0);  // view 0's leader
  ASSERT_TRUE(coord.Write("a", "after", ToBytes("v")).ok());
  EXPECT_GE(coord.cluster().current_view(), 1u);
  auto entry = coord.Read("a", "before");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(ToString(entry->value), "v");
}

TEST(SmrClusterTest, CrashModeUsesFewerReplicas) {
  auto env = Environment::Scaled(1e-3);
  SmrConfig config = FastSmrConfig(false);
  ReplicatedCoordination coord(env.get(), config);
  EXPECT_EQ(coord.cluster().replica_count(), 3u);  // 2f+1
  ASSERT_TRUE(coord.Write("a", "k", ToBytes("v")).ok());
  auto entry = coord.Read("a", "k");
  ASSERT_TRUE(entry.ok());
}

TEST(SmrClusterTest, LockSemanticsThroughReplication) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), FastSmrConfig(true));
  auto lock = coord.TryLock("alice", "L", 120 * kSecond);
  ASSERT_TRUE(lock.ok());
  EXPECT_EQ(coord.TryLock("bob", "L", 120 * kSecond).status().code(),
            ErrorCode::kBusy);
  ASSERT_TRUE(coord.Unlock("alice", "L", lock->token).ok());
  EXPECT_TRUE(coord.TryLock("bob", "L", 120 * kSecond).ok());
}

// ---------------------------------------------------------------------------
// Batched ordering, read-only fast path and view-change certificates.
// ---------------------------------------------------------------------------

TEST(SmrClusterTest, FastPathServesReadsWithoutOrdering) {
  auto env = Environment::Scaled(1e-3);
  SmrConfig config = FastSmrConfig(true);
  // Generous: at this scale the default timeout is well under a real
  // millisecond, and host scheduling noise must not fail the fast round.
  config.fast_read_timeout = 5000 * kMillisecond;
  ReplicatedCoordination coord(env.get(), config);
  ASSERT_TRUE(coord.Write("alice", "k", ToBytes("v")).ok());
  // Wait for every replica to execute the write: a fast read served while a
  // straggler lags would (correctly) fall back, which is not this test.
  auto& cluster = coord.cluster();
  auto converged = [&] {
    for (unsigned r = 0; r < cluster.replica_count(); ++r) {
      if (cluster.executed_count(r) != 1u) {
        return false;
      }
    }
    return true;
  };
  for (int spin = 0; spin < 100 && !converged(); ++spin) {
    env->Sleep(50 * kMillisecond);
  }
  auto entry = coord.Read("alice", "k");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(ToString(entry->value), "v");
  SmrCounters counters = coord.cluster().counters();
  EXPECT_EQ(counters.fast_path_reads, 1u);
  // Only the write went through ordering.
  EXPECT_EQ(counters.ordered_commands, 1u);
}

TEST(SmrClusterTest, BatchingOrdersConcurrentClientsInOneInstance) {
  auto env = Environment::Scaled(1e-3);
  SmrConfig config = FastSmrConfig(true);
  config.max_batch = 16;
  // One instance at a time: requests arriving while it is in flight must
  // accumulate and ride the next PROPOSE together.
  config.max_inflight_instances = 1;
  ReplicatedCoordination coord(env.get(), config);
  constexpr int kThreads = 8;
  constexpr int kOps = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "b" + std::to_string(t) + "i" + std::to_string(i);
        if (!coord.Write("c" + std::to_string(t), key, ToBytes("v")).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  SmrCounters counters = coord.cluster().counters();
  EXPECT_EQ(counters.ordered_commands, kThreads * kOps);
  // Batching must have amortized instances: strictly fewer instances than
  // requests (40 concurrent requests cannot all have ridden alone).
  EXPECT_LT(counters.proposed_instances, counters.proposed_requests);
}

TEST(SmrClusterTest, BatchedOrderingSurvivesLeaderCrashMidBatch) {
  auto env = Environment::Scaled(1e-3);
  SmrConfig config = FastSmrConfig(true);
  config.max_batch = 8;
  ReplicatedCoordination coord(env.get(), config);
  constexpr int kThreads = 4;
  constexpr int kOps = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "v" + std::to_string(t) + "i" + std::to_string(i);
        if (!coord.Write("c" + std::to_string(t), key, ToBytes("x")).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Crash the view-0 leader while batches are in flight. The view-change
  // votes carry the followers' accepted proposals; the new leader adopts
  // them, so in-flight batches commit under the new view without
  // reordering or re-execution.
  env->Sleep(20 * kMillisecond);
  coord.cluster().CrashReplica(0);
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(coord.cluster().current_view(), 1u);
  // Surviving replicas converge to exactly one execution per request —
  // checked BEFORE the verification reads, whose ordered fallbacks would
  // themselves add executed commands. A lagging replica catching up relies
  // on the new leader re-broadcasting below-frontier certificates.
  auto& cluster = coord.cluster();
  auto converged = [&] {
    for (unsigned r = 1; r < cluster.replica_count(); ++r) {
      if (cluster.executed_count(r) != kThreads * kOps) {
        return false;
      }
    }
    return true;
  };
  for (int spin = 0; spin < 100 && !converged(); ++spin) {
    env->Sleep(200 * kMillisecond);
  }
  for (unsigned r = 1; r < cluster.replica_count(); ++r) {
    EXPECT_EQ(cluster.executed_count(r), kThreads * kOps) << "replica " << r;
  }
  // Every write is present with version 1: executed exactly once despite
  // the crash, retransmissions and re-proposals.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOps; ++i) {
      std::string key = "v" + std::to_string(t) + "i" + std::to_string(i);
      auto entry = coord.Read("c" + std::to_string(t), key);
      ASSERT_TRUE(entry.ok()) << key;
      EXPECT_EQ(ToString(entry->value), "x") << key;
      EXPECT_EQ(entry->version, 1u) << key;
    }
  }
}

TEST(SmrClusterTest, FastReadFallsBackOnByzantineDivergence) {
  auto env = Environment::Scaled(1e-3);
  SmrConfig config = FastSmrConfig(true);
  config.fast_read_timeout = 200 * kMillisecond;
  ReplicatedCoordination coord(env.get(), config);
  ASSERT_TRUE(coord.Write("alice", "k", ToBytes("v")).ok());
  // One replica silent, one lying: the fast path can never assemble 2f+1
  // matching replies, so reads must fall back to the ordered path — and
  // still return the correct value (f+1 matching there).
  coord.cluster().CrashReplica(3);
  coord.cluster().SetReplicaByzantine(2, true);
  for (int i = 0; i < 3; ++i) {
    auto entry = coord.Read("alice", "k");
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(ToString(entry->value), "v");
  }
  SmrCounters counters = coord.cluster().counters();
  EXPECT_EQ(counters.fast_path_fallbacks, 3u);
  EXPECT_EQ(counters.fast_path_reads, 0u);
}

TEST(SmrClusterTest, AsyncSubmitStormExecutesExactlyOnce) {
  // Coarser time scale than the other SMR tests: the storm runs ~50
  // executor threads on however few cores the host has, and the client
  // timeout must stay large against real scheduling noise once mapped to
  // real time.
  auto env = Environment::Scaled(1e-2);
  SmrConfig config = FastSmrConfig(true);
  // Throttle the pipeline and shorten the client timeout so the storm
  // queues behind the inflight cap and retransmissions exercise the
  // per-client reply tables.
  config.max_batch = 2;
  config.max_inflight_instances = 1;
  config.client_timeout = 500 * kMillisecond;
  config.order_timeout = 4000 * kMillisecond;
  ReplicatedCoordination coord(env.get(), config);

  constexpr int kWrites = 40;
  constexpr int kCreates = 10;
  std::vector<Future<Result<CoordReply>>> futures;
  for (int i = 0; i < kWrites; ++i) {
    CoordCommand cmd;
    cmd.op = CoordOp::kWrite;
    cmd.client = "w" + std::to_string(i % 4);
    cmd.key = "s" + std::to_string(i);
    cmd.value = ToBytes("v");
    futures.push_back(coord.SubmitAsync(cmd));
  }
  // Concurrent conditional creates on one key: exactly one may win.
  for (int i = 0; i < kCreates; ++i) {
    CoordCommand cmd;
    cmd.op = CoordOp::kConditionalCreate;
    cmd.client = "creator";
    cmd.key = "the-one";
    cmd.value = ToBytes("c" + std::to_string(i));
    futures.push_back(coord.SubmitAsync(cmd));
  }

  int create_wins = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<CoordReply> reply = futures[i].Get();
    ASSERT_TRUE(reply.ok()) << "submission " << i;
    if (i < kWrites) {
      EXPECT_EQ(reply->code, ErrorCode::kOk) << "write " << i;
    } else if (reply->code == ErrorCode::kOk) {
      ++create_wins;
    } else {
      EXPECT_EQ(reply->code, ErrorCode::kAlreadyExists);
    }
  }
  EXPECT_EQ(create_wins, 1);
  // Version 1 everywhere: despite retransmissions under the short client
  // timeout, no write was applied twice.
  for (int i = 0; i < kWrites; ++i) {
    auto entry = coord.Read("w" + std::to_string(i % 4),
                            "s" + std::to_string(i));
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->version, 1u) << "key s" << i;
  }
}

// ---------------------------------------------------------------------------
// Snapshot-based state transfer.
// ---------------------------------------------------------------------------

// Shrunken state-transfer geometry: a tiny certificate window so a short lag
// already exceeds it, and a tight checkpoint cadence so fresh snapshots
// exist to ship. interval * retained-checkpoints stays below the window
// (the soundness requirement documented in smr.h).
SmrConfig SnapshotSmrConfig() {
  SmrConfig config = FastSmrConfig(true);
  config.executed_batch_window = 8;
  config.checkpoint_interval = 4;
  return config;
}

// Drives sequential writes; each rides its own consensus instance (the
// client is closed-loop), so `count` writes advance the frontier by ~count.
void AdvanceFrontier(ReplicatedCoordination* coord, const std::string& prefix,
                     int count) {
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(
        coord->Write("alice", prefix + std::to_string(i), ToBytes("v")).ok());
  }
}

TEST(SmrClusterTest, LaggardBeyondWindowRejoinsViaSnapshot) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), SnapshotSmrConfig());
  auto& cluster = coord.cluster();
  cluster.CrashReplica(3);
  // Lag replica 3 far beyond the executed-batch window (8): before snapshot
  // state transfer this wedged it permanently.
  AdvanceFrontier(&coord, "k", 40);
  const uint64_t target = cluster.exec_frontier(0);
  EXPECT_GT(target, 8u);
  cluster.RestartReplica(3);
  // Fresh traffic gives the restarted replica evidence of the live
  // frontier; the wedge detector then requests state from the peers.
  AdvanceFrontier(&coord, "post", 5);
  bool caught_up = false;
  for (int spin = 0; spin < 300 && !caught_up; ++spin) {
    env->Sleep(200 * kMillisecond);
    caught_up = cluster.exec_frontier(3) >= target &&
                cluster.state_digest(3) == cluster.state_digest(0);
  }
  EXPECT_TRUE(caught_up) << "laggard frontier " << cluster.exec_frontier(3)
                         << " vs target " << target;
  SmrCounters counters = cluster.counters();
  EXPECT_GE(counters.state_requests, 1u);
  EXPECT_GE(counters.snapshots_installed, 1u);
  EXPECT_GE(counters.checkpoints_taken, 1u);
  // With all four replicas converged, the operations surface reports the
  // quorum-vouched fingerprint (poll: replies ack at order-quorum, so the
  // fourth replica may still be executing the tail).
  Bytes quorum_digest;
  for (int spin = 0; spin < 100 && quorum_digest.empty(); ++spin) {
    quorum_digest = coord.StateDigest();
    if (quorum_digest.empty()) {
      env->Sleep(100 * kMillisecond);
    }
  }
  EXPECT_EQ(quorum_digest, cluster.state_digest(3));
  // Subsequent execution is identical to the quorum: exactly-once held
  // across the install (every key at version 1), and new writes commit.
  ASSERT_TRUE(coord.Write("alice", "final", ToBytes("z")).ok());
  for (int i = 0; i < 40; ++i) {
    auto entry = coord.Read("alice", "k" + std::to_string(i));
    ASSERT_TRUE(entry.ok()) << "k" << i;
    EXPECT_EQ(entry->version, 1u) << "k" << i;
  }
}

TEST(SmrClusterTest, LaggardRejoinsAcrossViewChange) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), SnapshotSmrConfig());
  auto& cluster = coord.cluster();
  cluster.CrashReplica(3);
  AdvanceFrontier(&coord, "k", 40);
  const uint64_t target = cluster.exec_frontier(0);
  cluster.RestartReplica(3);
  // Crash the view-0 leader: the remaining quorum is {1, 2, 3}, so every
  // further write's order-quorum ack REQUIRES the laggard to rejoin. The
  // new leader's vote quorum carries checkpoints ~seq 40; its collective
  // checkpoint stops it from re-proposing the below-window history (which
  // the 8-seq window could not cover anyway) and replica 3 recovers via
  // snapshot instead — including adopting the new view from ordering
  // evidence, since it never saw the view-change votes complete.
  cluster.CrashReplica(0);
  AdvanceFrontier(&coord, "post", 3);
  EXPECT_GE(cluster.current_view(), 1u);
  bool caught_up = false;
  for (int spin = 0; spin < 300 && !caught_up; ++spin) {
    env->Sleep(200 * kMillisecond);
    caught_up = cluster.exec_frontier(3) >= target &&
                cluster.state_digest(3) == cluster.state_digest(1);
  }
  EXPECT_TRUE(caught_up) << "laggard frontier " << cluster.exec_frontier(3)
                         << " vs target " << target;
  EXPECT_GE(cluster.counters().snapshots_installed, 1u);
  for (int i = 0; i < 3; ++i) {
    auto entry = coord.Read("alice", "post" + std::to_string(i));
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->version, 1u);
  }
}

TEST(SmrClusterTest, ByzantineSnapshotOfferRejected) {
  auto env = Environment::Scaled(1e-3);
  ReplicatedCoordination coord(env.get(), SnapshotSmrConfig());
  auto& cluster = coord.cluster();
  cluster.CrashReplica(3);
  AdvanceFrontier(&coord, "k", 40);
  const uint64_t target = cluster.exec_frontier(0);
  // Replica 2 now lies: its state replies carry a forged snapshot (payload
  // no longer hashing to the vouched digest) and skewed tail certificates.
  cluster.SetReplicaByzantine(2, true);
  cluster.RestartReplica(3);
  AdvanceFrontier(&coord, "post", 5);
  bool caught_up = false;
  for (int spin = 0; spin < 300 && !caught_up; ++spin) {
    env->Sleep(200 * kMillisecond);
    caught_up = cluster.exec_frontier(3) >= target &&
                cluster.state_digest(3) == cluster.state_digest(0);
  }
  // The laggard still rejoins — the f+1 vouch quorum is satisfiable from
  // the two honest peers — and lands on the honest state, not the forgery.
  EXPECT_TRUE(caught_up) << "laggard frontier " << cluster.exec_frontier(3)
                         << " vs target " << target;
  SmrCounters counters = cluster.counters();
  EXPECT_GE(counters.snapshots_installed, 1u);
  // The forged payload was detected and dropped at receipt.
  EXPECT_GE(counters.snapshot_payload_rejects, 1u);
  for (int i = 0; i < 40; ++i) {
    auto entry = coord.Read("alice", "k" + std::to_string(i));
    ASSERT_TRUE(entry.ok()) << "k" << i;
    EXPECT_EQ(ToString(entry->value), "v") << "k" << i;
  }
}

// ---------------------------------------------------------------------------
// Fast-path fallback cooldown and frontier-tagged replies.
// ---------------------------------------------------------------------------

TEST(SmrClusterTest, FallbackCooldownBypassesDoomedFastRounds) {
  auto env = Environment::Scaled(1e-3);
  SmrConfig config = FastSmrConfig(true);
  config.fast_read_timeout = 200 * kMillisecond;
  config.fast_read_fallback_cooldown = 60 * kSecond;
  ReplicatedCoordination coord(env.get(), config);
  ASSERT_TRUE(coord.Write("alice", "k", ToBytes("v")).ok());
  // One silent + one lying replica: no fast round can assemble 2f+1
  // matching replies, so the first read pays the fast_read_timeout and
  // arms the cooldown; the remaining reads skip the doomed round and go
  // straight to the ordered path (where f+1 honest matches suffice).
  coord.cluster().CrashReplica(3);
  coord.cluster().SetReplicaByzantine(2, true);
  for (int i = 0; i < 5; ++i) {
    auto entry = coord.Read("alice", "k");
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(ToString(entry->value), "v");
  }
  SmrCounters counters = coord.cluster().counters();
  EXPECT_EQ(counters.fast_path_reads, 0u);
  EXPECT_EQ(counters.fast_path_fallbacks, 5u);
  EXPECT_EQ(counters.fast_path_cooldown_bypasses, 4u);
}

TEST(SmrClusterTest, FastReadRejectsStaleQuorumAgainstWatermark) {
  auto env = Environment::Scaled(1e-3);
  SmrConfig config = FastSmrConfig(true);
  config.fast_read_timeout = 5000 * kMillisecond;
  ReplicatedCoordination coord(env.get(), config);
  ASSERT_TRUE(coord.Write("alice", "k", ToBytes("v")).ok());
  auto& cluster = coord.cluster();
  // Let every replica execute the write so the first read rides the fast
  // path and establishes a vouched frontier watermark.
  auto converged = [&] {
    for (unsigned r = 0; r < cluster.replica_count(); ++r) {
      if (cluster.executed_count(r) != 1u) {
        return false;
      }
    }
    return true;
  };
  for (int spin = 0; spin < 100 && !converged(); ++spin) {
    env->Sleep(50 * kMillisecond);
  }
  auto entry = coord.Read("alice", "k");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(coord.cluster().counters().fast_path_reads, 1u);
  EXPECT_GE(cluster.client_observed_frontier(), 1u);
  // Force the watermark beyond every replica's committed frontier — the
  // state a client is in right after an ordered read exposed a write the
  // replicas it is about to hear from have not executed. The fast round
  // assembles a matching quorum, but a stale one: it must be rejected and
  // the read served through the ordered path instead of inverting.
  cluster.set_client_observed_frontier(1u << 20);
  auto guarded = coord.Read("alice", "k");
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(ToString(guarded->value), "v");
  SmrCounters counters = cluster.counters();
  EXPECT_EQ(counters.fast_path_reads, 1u);  // only the pre-inflation read
  EXPECT_GE(counters.fast_path_stale_quorums, 1u);
  EXPECT_GE(counters.fast_path_fallbacks, 1u);
}

// ---------------------------------------------------------------------------
// Partitioned coordination: routing, scatter-gather, combined digests.
// ---------------------------------------------------------------------------

PartitionedCoordinationConfig FastPartitionedConfig(unsigned partitions) {
  PartitionedCoordinationConfig config;
  config.partitions = partitions;
  config.smr = FastSmrConfig(true);
  return config;
}

// ---------------------------------------------------------------------------
// Linearizability of lease-served reads. A writer commits acked writes of a
// monotonically increasing counter; readers serve the key from a delegated
// lease snapshot when they hold one (exactly the metadata service's serving
// discipline: install the grant, drop it on a revocation notice or expiry)
// and re-acquire through the ordered path otherwise. Every event is recorded
// as an (invocation, response, value) interval; the checker asserts no read
// returns a value older than a write whose ack completed before the read
// began — the no-stale-read-after-ack rule — including across a leader crash
// and the resulting view change while revocations are in flight.
// ---------------------------------------------------------------------------

class LeaseHistoryClient {
 public:
  LeaseHistoryClient(Environment* env, CoordinationService* coord,
                     LeaseManager* manager, std::string session)
      : env_(env), coord_(coord), manager_(manager),
        session_(std::move(session)) {
    holder_id_ = manager_->RegisterHolder([this](const std::string& prefix) {
      std::lock_guard<std::mutex> lock(mu_);
      const size_t n = std::min(prefix.size(), kPrefix_.size());
      if (prefix.empty() || prefix.compare(0, n, kPrefix_, 0, n) == 0) {
        valid_ = false;
        ++revocation_gen_;
      }
    });
  }
  ~LeaseHistoryClient() { manager_->UnregisterHolder(holder_id_); }

  // Returns the value read (parsed counter) or -1 on failure, and whether it
  // was served locally.
  int64_t Read(bool* local) {
    uint64_t gen_at_start = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (valid_ && env_->Now() < expires_at_) {
        *local = true;
        return snapshot_value_;
      }
      gen_at_start = revocation_gen_;
    }
    *local = false;
    // The TTL is generous on purpose: invalidation in this history comes
    // from revocations, not expiry, and a sanitized (ASan/TSan) build can
    // burn whole virtual seconds of work between two polls — an expiring
    // lease would then never serve a read locally.
    auto grant = coord_->AcquireLease("alice", session_, kPrefix_,
                                      30 * kSecond);
    if (!grant.ok()) {
      return -1;
    }
    int64_t value = -1;
    for (const auto& entry : grant->entries) {
      if (entry.key == kKey_) {
        value = ParseCounter(entry.value);
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    // A revocation notice delivered while the grant round was in flight
    // wins (the revoking mutation was ordered after the grant executed):
    // serve this read from the grant — it was current when ordered — but
    // discard the snapshot instead of caching stale state. Same race check
    // as MetadataService::AcquireLeaseFor.
    if (revocation_gen_ == gen_at_start) {
      valid_ = true;
      expires_at_ = grant->expires_at;
      snapshot_value_ = value;
    }
    return value;
  }

  static int64_t ParseCounter(const Bytes& bytes) {
    return bytes.empty() ? -1 : std::stoll(ToString(bytes));
  }

 private:
  const std::string kPrefix_ = "m:/lin/";
  const std::string kKey_ = "m:/lin/k";

  Environment* env_;
  CoordinationService* coord_;
  LeaseManager* manager_;
  std::string session_;
  uint64_t holder_id_ = 0;

  std::mutex mu_;
  bool valid_ = false;
  uint64_t revocation_gen_ = 0;
  VirtualTime expires_at_ = 0;
  int64_t snapshot_value_ = -1;
};

TEST(LeaseLinearizabilityTest, NoReadOlderThanAckedWriteAcrossViewChange) {
  auto env = Environment::Scaled(1e-3);
  LeaseManager manager;
  auto inner =
      std::make_unique<ReplicatedCoordination>(env.get(), FastSmrConfig(true));
  ReplicatedCoordination* cluster_handle = inner.get();
  LeasedCoordination coord(std::move(inner), &manager);

  const std::string key = "m:/lin/k";
  ASSERT_TRUE(coord.Write("alice", key, ToBytes("0")).ok());

  struct Event {
    VirtualTime invoked = 0;
    VirtualTime responded = 0;
    int64_t value = 0;
    bool is_write = false;
  };
  std::mutex history_mu;
  std::vector<Event> history;
  auto record = [&](const Event& event) {
    std::lock_guard<std::mutex> lock(history_mu);
    history.push_back(event);
  };

  constexpr int kWrites = 30;
  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> local_reads{0};

  std::thread writer([&] {
    for (int i = 1; i <= kWrites; ++i) {
      Event event;
      event.is_write = true;
      event.value = i;
      event.invoked = env->Now();
      ASSERT_TRUE(
          coord.Write("alice", key, ToBytes(std::to_string(i))).ok());
      event.responded = env->Now();
      record(event);
      env->Sleep(20 * kMillisecond);
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      LeaseHistoryClient client(env.get(), &coord, &manager,
                                "reader" + std::to_string(r));
      // The quiet tail after the writer finishes makes local serving
      // deterministic: a slow (e.g. sanitized) build can land a write —
      // and so a revocation — inside every poll gap of the racing phase,
      // but once writes stop, the first tail read (re-)grants and the
      // following ones must be served from the delegation.
      int tail = 3;
      while (!writer_done.load() || tail-- > 0) {
        Event event;
        event.invoked = env->Now();
        bool local = false;
        const int64_t value = client.Read(&local);
        event.responded = env->Now();
        if (value >= 0) {
          event.value = value;
          record(event);
        }
        if (local) {
          local_reads.fetch_add(1);
        }
        env->Sleep(5 * kMillisecond);
      }
    });
  }

  // Crash the leader mid-run: revocations committed around the crash must
  // survive the view change (lease state rides the checkpoint/vote state the
  // new leader adopts), and reads during the re-election keep linearizing.
  env->Sleep(250 * kMillisecond);
  cluster_handle->cluster().CrashReplica(0);

  writer.join();
  for (auto& reader : readers) {
    reader.join();
  }

  // The checker: for every read, no acked-before-invocation write may be
  // newer than the value returned. Values are monotone, so the latest such
  // write is the max over complete-before intervals.
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(history_mu);
    events = history;
  }
  uint64_t checked = 0;
  for (const Event& read : events) {
    if (read.is_write) {
      continue;
    }
    int64_t floor_value = 0;
    for (const Event& write : events) {
      if (write.is_write && write.responded < read.invoked) {
        floor_value = std::max(floor_value, write.value);
      }
    }
    EXPECT_GE(read.value, floor_value)
        << "stale lease read: returned " << read.value << " after write "
        << floor_value << " acked";
    ++checked;
  }
  EXPECT_GT(checked, 0u);
  // The lease plane actually served reads locally (the history exercised
  // the delegated path, not just the anchored one).
  EXPECT_GT(local_reads.load(), 0u);
  EXPECT_GT(manager.counters().revocations, 0u);
}

TEST(PartitionedCoordinationTest, RoutesKeysAcrossIndependentPartitions) {
  auto env = Environment::Scaled(1e-3);
  PartitionedCoordination coord(env.get(), FastPartitionedConfig(4));
  EXPECT_EQ(coord.partition_count(), 4u);
  std::set<unsigned> used;
  for (int i = 0; i < 16; ++i) {
    std::string key = "spread:" + std::to_string(i);
    ASSERT_LT(coord.PartitionOf(key), 4u);
    used.insert(coord.PartitionOf(key));
    ASSERT_TRUE(
        coord.Write("alice", key, ToBytes("v" + std::to_string(i))).ok());
  }
  EXPECT_GT(used.size(), 1u);  // the hash actually spreads keys
  for (int i = 0; i < 16; ++i) {
    auto entry = coord.Read("alice", "spread:" + std::to_string(i));
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(ToString(entry->value), "v" + std::to_string(i));
    EXPECT_EQ(entry->version, 1u);
  }
  // Scatter-gather prefix read: every key, globally sorted, regardless of
  // which partition holds which.
  auto listed = coord.ReadPrefix("alice", "spread:");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 16u);
  EXPECT_TRUE(std::is_sorted(
      listed->begin(), listed->end(),
      [](const CoordEntryView& a, const CoordEntryView& b) {
        return a.key < b.key;
      }));
  // The lock recipe keeps per-key linearizability: a lock name lives on
  // exactly one partition, so exclusion is exactly the unsharded one.
  auto lock = coord.TryLock("alice", "L", 120 * kSecond);
  ASSERT_TRUE(lock.ok());
  EXPECT_EQ(coord.TryLock("bob", "L", 120 * kSecond).status().code(),
            ErrorCode::kBusy);
  ASSERT_TRUE(coord.Unlock("alice", "L", lock->token).ok());
}

TEST(PartitionedCoordinationTest, RenamePrefixRejectedAcrossPartitions) {
  auto env = Environment::Scaled(1e-3);
  PartitionedCoordination coord(env.get(), FastPartitionedConfig(2));
  ASSERT_TRUE(coord.Write("alice", "m:/d/x", ToBytes("v")).ok());
  EXPECT_EQ(coord.RenamePrefix("alice", "m:/d", "m:/e").code(),
            ErrorCode::kNotSupported);
}

TEST(PartitionedCoordinationTest, CoLocationPrefixesRouteWithTheirSuffix) {
  auto env = Environment::Scaled(1e-3);
  PartitionedCoordination coord(env.get(), FastPartitionedConfig(8));
  for (const std::string key : {"m:/a/dir/", "m:/b/other/"}) {
    EXPECT_EQ(coord.PartitionOf("ri:" + key), coord.PartitionOf(key));
    EXPECT_EQ(coord.PartitionOf("rc:" + key), coord.PartitionOf(key));
  }
}

TEST(PartitionedCoordinationTest, StateDigestCombinesDeterministically) {
  auto env = Environment::Scaled(1e-3);
  auto drive = [&](PartitionedCoordination& coord) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          coord.Write("alice", "sd:" + std::to_string(i), ToBytes("v")).ok());
    }
  };
  auto quorum_digest = [&](PartitionedCoordination& coord) {
    Bytes digest;
    for (int spin = 0; spin < 200 && digest.empty(); ++spin) {
      digest = coord.StateDigest();
      if (digest.empty()) {
        env->Sleep(50 * kMillisecond);
      }
    }
    return digest;
  };
  PartitionedCoordination a(env.get(), FastPartitionedConfig(4), 7);
  PartitionedCoordination b(env.get(), FastPartitionedConfig(4), 7);
  drive(a);
  drive(b);
  // Same per-key history -> same combined fingerprint: the per-partition
  // quorum digests are concatenated sorted by partition index, so the
  // combination is stable across deployments and restarts.
  Bytes da = quorum_digest(a);
  Bytes db = quorum_digest(b);
  ASSERT_FALSE(da.empty());
  EXPECT_EQ(da, db);
  ASSERT_TRUE(a.Write("alice", "sd:extra", ToBytes("w")).ok());
  Bytes da2 = quorum_digest(a);
  ASSERT_FALSE(da2.empty());
  EXPECT_NE(da2, da);  // and state-sensitive
}

TEST(SmrClusterTest, AccumulationDelayAmortizesAndStaysExactlyOnce) {
  auto env = Environment::Scaled(1e-3);
  SmrConfig config = FastSmrConfig(true);
  config.max_batch = 16;
  config.batch_accumulation_delay = 20 * kMillisecond;
  ReplicatedCoordination coord(env.get(), config);
  constexpr int kThreads = 4;
  constexpr int kOps = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "a" + std::to_string(t) + "i" + std::to_string(i);
        if (!coord.Write("c" + std::to_string(t), key, ToBytes("v")).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  SmrCounters counters = coord.cluster().counters();
  EXPECT_EQ(counters.ordered_commands, kThreads * kOps);
  // The delay accumulated the concurrent arrivals: strictly fewer
  // instances than requests.
  EXPECT_LT(counters.proposed_instances, counters.proposed_requests);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOps; ++i) {
      std::string key = "a" + std::to_string(t) + "i" + std::to_string(i);
      auto entry = coord.Read("c" + std::to_string(t), key);
      ASSERT_TRUE(entry.ok()) << key;
      EXPECT_EQ(entry->version, 1u) << key;
    }
  }
}

// ---------------------------------------------------------------------------
// Elastic repartitioning: versioned route map, lazy client updates, live
// range migration with crash-recovery replay, scatter-gather dedupe, and
// the load-aware split controller.
// ---------------------------------------------------------------------------

PartitionedCoordinationConfig ElasticConfig(unsigned active, unsigned spares) {
  PartitionedCoordinationConfig config;
  config.partitions = active;
  config.spare_partitions = spares;
  config.smr = FastSmrConfig(true);
  return config;
}

// With two active partitions the uniform map is [0, 2^63) -> 0 and
// [2^63, 2^64) -> 1, and SplitPartition(0) moves [2^62, 2^63) to the spare.
bool InFirstSplitRange(const std::string& key) {
  return PartitionRoutingHash(key) >= (1ull << 62) &&
         PartitionRoutingHash(key) < (1ull << 63);
}

std::vector<std::string> SeedElasticKeys(PartitionedCoordination* coord,
                                         int count) {
  std::vector<std::string> keys;
  for (int i = 0; i < count; ++i) {
    keys.push_back("ek:" + std::to_string(i));
    EXPECT_TRUE(
        coord->Write("alice", keys.back(), ToBytes("v" + std::to_string(i)))
            .ok());
  }
  return keys;
}

// No durable migration record may survive a completed (or replayed)
// migration. Read as the admin principal: the records are invisible to
// ordinary clients by ACL.
void ExpectNoMigrationRecords(PartitionedCoordination* coord) {
  CoordCommand scan;
  scan.op = CoordOp::kReadPrefix;
  scan.client = kCoordAdminPrincipal;
  scan.key = "__elastic:";
  auto records = coord->Submit(scan);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->entries.empty());
}

TEST(ElasticPartitionTest, ManualSplitMovesRangeExactlyOnce) {
  auto env = Environment::Scaled(1e-3);
  PartitionedCoordination coord(env.get(), ElasticConfig(2, 1));
  EXPECT_EQ(coord.partition_count(), 3u);
  EXPECT_EQ(coord.active_partition_count(), 2u);
  EXPECT_EQ(coord.route_epoch(), 1u);
  const std::vector<std::string> keys = SeedElasticKeys(&coord, 32);

  ASSERT_TRUE(coord.SplitPartition(0).ok());
  EXPECT_EQ(coord.route_epoch(), 2u);
  EXPECT_EQ(coord.active_partition_count(), 3u);
  ElasticCounters counters = coord.elastic_counters();
  EXPECT_EQ(counters.splits, 1u);
  EXPECT_GT(counters.keys_migrated, 0u);
  EXPECT_GT(counters.last_migration_us, 0u);

  // Every key still readable with its value; migrated entries carry exactly
  // one extra version bump (the import), never two.
  size_t moved = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    auto entry = coord.Read("alice", keys[i]);
    ASSERT_TRUE(entry.ok()) << keys[i];
    EXPECT_EQ(ToString(entry->value), "v" + std::to_string(i));
    if (coord.PartitionOf(keys[i]) == 2u) {
      ++moved;
      EXPECT_EQ(entry->version, 2u) << keys[i];
    } else {
      EXPECT_EQ(entry->version, 1u) << keys[i];
    }
  }
  EXPECT_EQ(moved, counters.keys_migrated);
  EXPECT_GT(moved, 0u);

  // The merged prefix view is complete, sorted and duplicate-free.
  auto listed = coord.ReadPrefix("alice", "ek:");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), keys.size());
  for (size_t i = 1; i < listed->size(); ++i) {
    EXPECT_LT((*listed)[i - 1].key, (*listed)[i].key);
  }
  ExpectNoMigrationRecords(&coord);
}

TEST(ElasticPartitionTest, MisroutedCommandRetriesWithFreshMap) {
  auto env = Environment::Scaled(1e-3);
  PartitionedCoordination coord(env.get(), ElasticConfig(2, 1));
  const std::vector<std::string> keys = SeedElasticKeys(&coord, 24);
  // "alice" now caches the epoch-1 map. Split, then write to a migrated
  // key: the stale-routed command is rejected with the current map and
  // retried transparently — the caller never sees the detour.
  ASSERT_TRUE(coord.SplitPartition(0).ok());
  std::string migrated;
  for (const std::string& key : keys) {
    if (coord.PartitionOf(key) == 2u) {
      migrated = key;
      break;
    }
  }
  ASSERT_FALSE(migrated.empty());
  EXPECT_EQ(coord.elastic_counters().route_epoch_retries, 0u);
  ASSERT_TRUE(coord.Write("alice", migrated, ToBytes("w")).ok());
  EXPECT_GE(coord.elastic_counters().route_epoch_retries, 1u);
  auto entry = coord.Read("alice", migrated);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(ToString(entry->value), "w");
  EXPECT_EQ(entry->version, 3u);  // import bump + the post-split write
  // The map is learned once; the next command routes right the first time.
  const uint64_t retries = coord.elastic_counters().route_epoch_retries;
  ASSERT_TRUE(coord.Write("alice", migrated, ToBytes("w2")).ok());
  EXPECT_EQ(coord.elastic_counters().route_epoch_retries, retries);
}

TEST(ElasticPartitionTest, ScatterGatherDedupesMidSplitDuplicates) {
  auto env = Environment::Scaled(1e-3);
  PartitionedCoordination coord(env.get(), ElasticConfig(2, 1));
  const std::vector<std::string> keys = SeedElasticKeys(&coord, 12);
  // Fabricate the mid-split state: one key present on both its owner and
  // another partition (source copy not yet retired / destination copy just
  // imported), with the non-owner copy stale.
  const std::string& dup = keys[0];
  const unsigned owner = coord.PartitionOf(dup);
  const unsigned other = owner == 0 ? 1 : 0;
  auto exported = coord.ExportPrefix("alice", dup);
  ASSERT_TRUE(exported.ok());
  ASSERT_EQ(exported->size(), 1u);
  ASSERT_TRUE(coord.Write("alice", dup, ToBytes("fresh")).ok());  // owner copy
  CoordCommand import;
  import.op = CoordOp::kImportEntry;
  import.client = kCoordAdminPrincipal;
  import.key = dup;
  import.value = exported->front().value;  // pre-write (stale) payload
  auto imported = coord.cluster(other).Execute(import);
  ASSERT_TRUE(imported.ok());
  ASSERT_TRUE(imported->ok());

  // The regression: a scatter-gather prefix read across the duplicate must
  // return the key once, and the owner's copy must win.
  auto listed = coord.ReadPrefix("alice", "ek:");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), keys.size());
  size_t seen = 0;
  for (const auto& entry : *listed) {
    if (entry.key == dup) {
      ++seen;
      EXPECT_EQ(ToString(entry.value), "fresh");
    }
  }
  EXPECT_EQ(seen, 1u);
}

TEST(ElasticPartitionTest, MergeReturnsRangesToDst) {
  auto env = Environment::Scaled(1e-3);
  PartitionedCoordination coord(env.get(), ElasticConfig(2, 1));
  const std::vector<std::string> keys = SeedElasticKeys(&coord, 24);
  ASSERT_TRUE(coord.SplitPartition(0).ok());
  ASSERT_EQ(coord.active_partition_count(), 3u);
  // Cool-down path: fold the split-off partition back into 0.
  ASSERT_TRUE(coord.MergePartitions(2, 0).ok());
  EXPECT_EQ(coord.active_partition_count(), 2u);
  EXPECT_EQ(coord.route_epoch(), 3u);
  EXPECT_EQ(coord.elastic_counters().merges, 1u);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto entry = coord.Read("alice", keys[i]);
    ASSERT_TRUE(entry.ok()) << keys[i];
    EXPECT_EQ(ToString(entry->value), "v" + std::to_string(i));
    EXPECT_NE(coord.PartitionOf(keys[i]), 2u);
  }
  auto listed = coord.ReadPrefix("alice", "ek:");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), keys.size());
  ExpectNoMigrationRecords(&coord);
}

TEST(ElasticPartitionTest, LeaseHookFiresAtSplitCommit) {
  auto env = Environment::Scaled(1e-3);
  PartitionedCoordinationConfig config = ElasticConfig(2, 1);
  std::vector<std::string> revoked;
  config.on_migration_commit =
      [&revoked](const std::vector<LeaseRevocation>& batch) {
        for (const auto& r : batch) {
          revoked.push_back(r.prefix);
        }
      };
  PartitionedCoordination coord(env.get(), config);
  const std::vector<std::string> keys = SeedElasticKeys(&coord, 24);
  ASSERT_TRUE(coord.SplitPartition(0).ok());
  // Exactly the migrated keys were revoked (holders of leases on those
  // prefixes must drop before any post-split mutation can ack).
  std::set<std::string> expected;
  for (const std::string& key : keys) {
    if (coord.PartitionOf(key) == 2u) {
      expected.insert(key);
    }
  }
  EXPECT_EQ(std::set<std::string>(revoked.begin(), revoked.end()), expected);
  EXPECT_FALSE(revoked.empty());
}

class ElasticCrashTest : public ::testing::Test {
 protected:
  ElasticCrashTest() : env_(Environment::Scaled(1e-3)) {
    PartitionedCoordinationConfig config = ElasticConfig(2, 1);
    // Crash tests probe the frozen state; a short stall budget keeps the
    // "mutation stalls behind a wedged migration" probe fast.
    config.migration_stall_timeout = 300 * kMillisecond;
    coord_ = std::make_unique<PartitionedCoordination>(env_.get(), config);
    keys_ = SeedElasticKeys(coord_.get(), 24);
    for (const std::string& key : keys_) {
      (InFirstSplitRange(key) ? &moved_ : &stayed_)->push_back(key);
    }
  }

  // Crash the controller at `point` during a split of partition 0, then
  // replay — the coordination plane's Mount analog — and verify the plane
  // converged to the post-split state with exactly-once entry migration.
  void CrashThenReplay(PartitionedCoordination::MigrationCrashPoint point) {
    ASSERT_FALSE(moved_.empty());
    ASSERT_FALSE(stayed_.empty());
    coord_->set_migration_crash_point(point);
    EXPECT_FALSE(coord_->SplitPartition(0).ok());

    // The migrating range is write-frozen while the migration is wedged:
    // a mutation into it stalls and times out; one outside sails through.
    EXPECT_EQ(coord_->Write("alice", moved_.front(), ToBytes("x"))
                  .code(),
              ErrorCode::kUnavailable);
    EXPECT_GE(coord_->elastic_counters().migration_stalls, 1u);
    ASSERT_TRUE(coord_->Write("alice", stayed_.front(), ToBytes("y")).ok());

    ASSERT_TRUE(coord_->ReplayMigrations().ok());
    EXPECT_EQ(coord_->route_epoch(), 2u);
    EXPECT_EQ(coord_->active_partition_count(), 3u);
    EXPECT_EQ(coord_->elastic_counters().splits, 1u);
    for (const std::string& key : moved_) {
      EXPECT_EQ(coord_->PartitionOf(key), 2u);
      auto entry = coord_->Read("alice", key);
      ASSERT_TRUE(entry.ok()) << key;
      // Exactly-once: one import bump (1 -> 2) no matter how many times
      // the replay re-imported the entry.
      EXPECT_EQ(entry->version, 2u) << key;
    }
    for (const std::string& key : stayed_) {
      ASSERT_TRUE(coord_->Read("alice", key).ok()) << key;
    }
    // The plane is fully live again: mutations into the moved range work.
    ASSERT_TRUE(coord_->Write("alice", moved_.front(), ToBytes("z")).ok());
    ExpectNoMigrationRecords(coord_.get());
  }

  std::unique_ptr<Environment> env_;
  std::unique_ptr<PartitionedCoordination> coord_;
  std::vector<std::string> keys_;
  std::vector<std::string> moved_;
  std::vector<std::string> stayed_;
};

TEST_F(ElasticCrashTest, ReplayAfterIntentCrash) {
  CrashThenReplay(PartitionedCoordination::MigrationCrashPoint::kAfterIntent);
}

TEST_F(ElasticCrashTest, ReplayAfterPartialImportCrash) {
  CrashThenReplay(PartitionedCoordination::MigrationCrashPoint::kMidImport);
}

TEST_F(ElasticCrashTest, ReplayAfterCommitCrash) {
  CrashThenReplay(PartitionedCoordination::MigrationCrashPoint::kAfterCommit);
}

TEST(ElasticPartitionTest, HotShareIsWindowedNotCumulative) {
  // 1000 historical ops on partition 0, then a window in which only
  // partition 1 works: current load is all partition 1. A cumulative
  // computation would still call partition 0 hot — the bug this guards.
  PartitionLoadSnapshot before;
  before.at = 0;
  before.per_partition.resize(2);
  before.per_partition[0].ordered_commands = 1000;
  PartitionLoadSnapshot after = before;
  after.at = kSecond;
  after.per_partition[1].ordered_commands = 100;
  const std::vector<double> rates = PartitionOpsPerSecond(before, after);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0], 0.0);
  EXPECT_EQ(rates[1], 100.0);
  EXPECT_EQ(PartitionHotShare(before, after), 1.0);
}

TEST(ElasticPartitionTest, AutoSplitFiresUnderSkew) {
  // Scale chosen for sanitized builds: at 1e-3 a TSan-instrumented write
  // burns ~1 ms real = a full virtual second, and the windowed rate never
  // clears split_min_total_ops_s. 2e-2 keeps the per-virtual-second rate
  // two orders above the gate even at a 10x slowdown.
  auto env = Environment::Scaled(2e-2);
  PartitionedCoordinationConfig config = ElasticConfig(2, 1);
  config.auto_split = true;
  config.split_window = 400 * kMillisecond;
  config.split_hot_share = 0.6;
  config.split_min_total_ops_s = 1.0;
  PartitionedCoordination coord(env.get(), config);
  // Pin every write onto keys owned by partition 0: its windowed share
  // goes to ~1 and the controller must split it onto the spare.
  std::vector<std::string> hot_keys;
  for (int i = 0; hot_keys.size() < 8; ++i) {
    std::string key = "hot:" + std::to_string(i);
    if (coord.PartitionOf(key) == 0u) {
      hot_keys.push_back(key);
    }
  }
  const VirtualTime deadline = env->Now() + 60 * kSecond;
  uint64_t i = 0;
  while (coord.elastic_counters().splits == 0 && env->Now() < deadline) {
    ASSERT_TRUE(
        coord.Write("alice", hot_keys[i % hot_keys.size()], ToBytes("v"))
            .ok());
    ++i;
  }
  EXPECT_GE(coord.elastic_counters().splits, 1u);
  EXPECT_GE(coord.route_epoch(), 2u);
  EXPECT_EQ(coord.active_partition_count(), 3u);
  // Partition 0's range really was carved up (the EWMA view itself resets
  // at the commit, so the map is the durable evidence).
  EXPECT_GE(coord.route_map().ranges.size(), 3u);
}

}  // namespace
}  // namespace scfs
