// Unit tests for the open-loop scenario engine (bench/scenario): the
// Zipfian sampler against closed-form frequencies, per-client RNG stream
// independence, the log-bucketed latency recorder against an exact sort,
// open-loop arrival schedules against their nominal rate, personality
// parsing, and a small end-to-end fleet run on an instant clock.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "bench/scenario/client_fleet.h"
#include "bench/scenario/latency_recorder.h"
#include "bench/scenario/personality.h"
#include "bench/scenario/samplers.h"
#include "src/baselines/local_fs.h"
#include "src/common/rng.h"
#include "src/sim/arrivals.h"
#include "src/sim/environment.h"

namespace scfs {
namespace {

// ---------------------------------------------------------------------------
// ZipfSampler
// ---------------------------------------------------------------------------

// Closed-form Zipf pmf: p(k) = (1/(k+1)^theta) / zeta_n(theta), rank k in
// [0, n).
double ZipfPmf(uint64_t n, double theta, uint64_t rank) {
  double zetan = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return (1.0 / std::pow(static_cast<double>(rank + 1), theta)) / zetan;
}

TEST(ZipfSamplerTest, ExactPathMatchesTheory) {
  // n below the exact-CDF limit: frequencies must track the pmf closely.
  const uint64_t n = 1000;
  const double theta = 0.99;
  const int draws = 200000;
  ZipfSampler sampler(n, theta);
  Rng rng(123);
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) {
    uint64_t v = sampler.Sample(&rng);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  // The top ranks have thousands of hits; 5% relative tolerance is ~10
  // standard deviations.
  for (uint64_t rank : {0ull, 1ull, 2ull, 9ull}) {
    const double expected = ZipfPmf(n, theta, rank) * draws;
    EXPECT_NEAR(counts[rank], expected, expected * 0.05)
        << "rank " << rank;
  }
  // Monotone head: rank 0 strictly dominates rank 10.
  EXPECT_GT(counts[0], counts[10]);
}

TEST(ZipfSamplerTest, GrayApproximationMatchesTheoryLoosely) {
  // n above the exact-CDF limit exercises the Gray et al. closed form; its
  // rank-0/1 split is approximate, so the tolerance is looser.
  const uint64_t n = 100000;
  const double theta = 0.99;
  const int draws = 200000;
  ZipfSampler sampler(n, theta);
  Rng rng(321);
  uint64_t rank0 = 0, in_range = 0;
  for (int i = 0; i < draws; ++i) {
    uint64_t v = sampler.Sample(&rng);
    ASSERT_LT(v, n);
    ++in_range;
    if (v == 0) {
      ++rank0;
    }
  }
  EXPECT_EQ(in_range, static_cast<uint64_t>(draws));
  const double expected = ZipfPmf(n, theta, 0) * draws;
  EXPECT_NEAR(static_cast<double>(rank0), expected, expected * 0.25);
}

TEST(ZipfSamplerTest, ThetaZeroIsUniform) {
  const uint64_t n = 64;
  ZipfSampler sampler(n, 0.0);
  Rng rng(7);
  std::vector<int> counts(n, 0);
  const int draws = 64000;
  for (int i = 0; i < draws; ++i) {
    ++counts[sampler.Sample(&rng)];
  }
  for (uint64_t i = 0; i < n; ++i) {
    // Mean 1000 per bucket; 4-sigma band.
    EXPECT_NEAR(counts[i], 1000, 4 * std::sqrt(1000.0)) << "bucket " << i;
  }
}

// ---------------------------------------------------------------------------
// Per-client RNG streams
// ---------------------------------------------------------------------------

TEST(RngStreamTest, SameStreamIsDeterministic) {
  Rng a = Rng::ForStream(42, 1000);
  Rng b = Rng::ForStream(42, 1000);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngStreamTest, StreamsAreIndependent) {
  // The scenario engine derives one stream per (client, op-counter) pair:
  // Rng(MixSeed(MixSeed(seed, client), counter)). Adjacent client ids and
  // counters must give uncorrelated draws.
  const uint64_t seed = 42;
  // Distinct (client, counter) pairs yield distinct first draws.
  std::set<uint64_t> first_draws;
  for (uint64_t client = 0; client < 64; ++client) {
    for (uint64_t counter = 0; counter < 4; ++counter) {
      Rng rng(MixSeed(MixSeed(seed, client), counter));
      first_draws.insert(rng.NextU64());
    }
  }
  EXPECT_EQ(first_draws.size(), 64u * 4u);

  // Bit-level balance between adjacent client streams: the fraction of
  // equal bits across 64-bit draws should be ~1/2.
  Rng c0 = Rng::ForStream(seed, 0);
  Rng c1 = Rng::ForStream(seed, 1);
  uint64_t equal_bits = 0;
  const int words = 1000;
  for (int i = 0; i < words; ++i) {
    equal_bits += 64 - __builtin_popcountll(c0.NextU64() ^ c1.NextU64());
  }
  const double frac = static_cast<double>(equal_bits) / (64.0 * words);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

// ---------------------------------------------------------------------------
// LatencyRecorder
// ---------------------------------------------------------------------------

TEST(LatencyRecorderTest, BucketInvariants) {
  // Every value maps to a bucket whose upper edge is >= the value, within
  // 1/64 relative width above the exact range.
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 129ull, 1000ull, 4095ull,
                     4096ull, 1000000ull, 123456789ull}) {
    const size_t idx = LatencyRecorder::BucketIndex(v);
    ASSERT_LT(idx, LatencyRecorder::kBucketCount);
    const uint64_t edge = LatencyRecorder::BucketUpperEdge(idx);
    EXPECT_GE(edge, v) << "value " << v;
    // Relative overshoot of the bucket edge: <= ~1/64 above the exact
    // region (edge/v - 1 <= 1/64 + rounding).
    if (v >= 128) {
      EXPECT_LE(static_cast<double>(edge) / static_cast<double>(v),
                1.0 + 1.0 / 64 + 1e-9)
          << "value " << v;
    } else {
      EXPECT_EQ(edge, v);  // exact 1-us buckets below 128
    }
    // Monotone: the next value's bucket is the same or later.
    EXPECT_GE(LatencyRecorder::BucketIndex(v + 1), idx);
  }
}

TEST(LatencyRecorderTest, PercentilesMatchExactSortOnMillionSamples) {
  // 1e6 samples from a long-tailed distribution spanning ~6 decades; the
  // log-bucketed percentiles must stay within the documented 1/64 relative
  // error of the exact sorted values.
  const size_t n = 1000000;
  Rng rng(99);
  LatencyRecorder recorder;
  std::vector<uint64_t> exact;
  exact.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Lognormal-ish: exp of a scaled sum of uniforms, plus a uniform floor.
    double e = 0;
    for (int k = 0; k < 4; ++k) {
      e += rng.UniformDouble();
    }
    const uint64_t v =
        static_cast<uint64_t>(std::exp(e * 3.0) * 50.0) + rng.UniformU64(100);
    recorder.Record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  ASSERT_EQ(recorder.count(), n);
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(p / 100.0 * n)));
    const uint64_t exact_v = exact[rank - 1];
    const uint64_t approx_v = recorder.PercentileUs(p);
    EXPECT_GE(approx_v, exact_v) << "p" << p;  // bucket upper edge
    EXPECT_LE(static_cast<double>(approx_v),
              static_cast<double>(exact_v) * (1.0 + 1.0 / 64) + 1.0)
        << "p" << p;
  }
  EXPECT_EQ(recorder.PercentileUs(100), exact.back());  // exact max
}

TEST(LatencyRecorderTest, MergeEqualsSingleRecorder) {
  Rng rng(5);
  LatencyRecorder merged, shards[4];
  LatencyRecorder single;
  for (int i = 0; i < 40000; ++i) {
    const uint64_t v = rng.UniformU64(1 << 20);
    single.Record(v);
    shards[i % 4].Record(v);
  }
  for (auto& shard : shards) {
    merged.Merge(shard);
  }
  EXPECT_EQ(merged.count(), single.count());
  EXPECT_EQ(merged.max_us(), single.max_us());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(merged.PercentileUs(p), single.PercentileUs(p)) << "p" << p;
  }
}

TEST(LatencyRecorderTest, EmptyRecorderIsZero) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.PercentileUs(99), 0u);
  EXPECT_EQ(recorder.MeanUs(), 0.0);
}

// ---------------------------------------------------------------------------
// OpenLoopArrivals
// ---------------------------------------------------------------------------

TEST(OpenLoopArrivalsTest, DeterministicCountMatchesRate) {
  // rate * window arrivals land inside the window, exactly (+-1 for the
  // boundary gap).
  const double rate = 1000;
  const VirtualTime start = 5 * kSecond;
  const VirtualDuration window = 10 * kSecond;
  OpenLoopArrivals arrivals(ArrivalProcess::kDeterministic, rate, start, 1);
  uint64_t count = 0;
  VirtualTime prev = start;
  for (;;) {
    VirtualTime t = arrivals.Next();
    EXPECT_GE(t, prev);  // monotone
    prev = t;
    if (t >= start + window) {
      break;
    }
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count), rate * 10.0, 1.0);
}

TEST(OpenLoopArrivalsTest, PoissonCountWithinTolerance) {
  // Poisson(rate * window): mean 20000, sd ~141; a 5-sigma band is a
  // one-in-thirty-million flake.
  const double rate = 500;
  const VirtualDuration window = 40 * kSecond;
  OpenLoopArrivals arrivals(ArrivalProcess::kPoisson, rate, 0, 7);
  uint64_t count = 0;
  while (arrivals.Next() < window) {
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count), 20000.0, 5 * std::sqrt(20000.0));
}

TEST(OpenLoopArrivalsTest, SameSeedSameSchedule) {
  OpenLoopArrivals a(ArrivalProcess::kPoisson, 100, 0, 42);
  OpenLoopArrivals b(ArrivalProcess::kPoisson, 100, 0, 42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

// ---------------------------------------------------------------------------
// Personality parsing
// ---------------------------------------------------------------------------

TEST(PersonalityTest, BuiltinsAreWellFormed) {
  for (const char* name :
       {"webserver", "varmail", "fileserver", "oltp", "videoserver"}) {
    auto spec = BuiltinPersonality(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_GT(spec->mix_total(), 0.99) << name;
    EXPECT_LT(spec->mix_total(), 1.01) << name;
    EXPECT_GT(spec->fileset_files, 0u) << name;
    EXPECT_GT(spec->file_size, 0u) << name;
  }
  EXPECT_FALSE(BuiltinPersonality("nosuch").ok());
}

TEST(PersonalityTest, OverridesAndSizeSuffixes) {
  auto spec = BuiltinPersonality("webserver");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(ApplyPersonalityOverride(&*spec, "file.size=64K").ok());
  EXPECT_EQ(spec->file_size, 64u * 1024);
  ASSERT_TRUE(ApplyPersonalityOverride(&*spec, "io.size=1M").ok());
  EXPECT_EQ(spec->io_size, 1024u * 1024);
  ASSERT_TRUE(ApplyPersonalityOverride(&*spec, "files=250").ok());
  EXPECT_EQ(spec->fileset_files, 250u);
  ASSERT_TRUE(ApplyPersonalityOverride(&*spec, "mix.append=0.5").ok());
  EXPECT_EQ(spec->mix_weight(ScenarioOp::kAppend), 0.5);
  ASSERT_TRUE(ApplyPersonalityOverride(&*spec, "arrival=deterministic").ok());
  EXPECT_EQ(spec->arrival, ArrivalProcess::kDeterministic);

  EXPECT_FALSE(ApplyPersonalityOverride(&*spec, "no_equals_sign").ok());
  EXPECT_FALSE(ApplyPersonalityOverride(&*spec, "unknown.key=1").ok());
  EXPECT_FALSE(ApplyPersonalityOverride(&*spec, "mix.nosuchop=1").ok());
  EXPECT_FALSE(ApplyPersonalityOverride(&*spec, "file.size=abc").ok());
  EXPECT_FALSE(ApplyPersonalityOverride(&*spec, "skew.theta=xyz").ok());
}

TEST(PersonalityTest, TextFormSkipsCommentsAndBlanks) {
  auto spec = BuiltinPersonality("oltp");
  ASSERT_TRUE(spec.ok());
  const std::string text =
      "# oltp tuned down\n"
      "\n"
      "  files=32\r\n"
      "skew.theta=0.5\n";
  ASSERT_TRUE(ApplyPersonalityText(&*spec, text).ok());
  EXPECT_EQ(spec->fileset_files, 32u);
  EXPECT_EQ(spec->zipf_theta, 0.5);
}

// ---------------------------------------------------------------------------
// ClientFleet end-to-end (instant clock, local in-memory file system)
// ---------------------------------------------------------------------------

TEST(ClientFleetTest, OpenLoopRunOnLocalFs) {
  auto env = Environment::Instant();
  LocalFs fs(env.get());
  auto spec = BuiltinPersonality("webserver");
  ASSERT_TRUE(spec.ok());
  spec->fileset_files = 32;
  spec->file_size = 4096;
  spec->append_size = 512;

  ClientFleet fleet(env.get(), *spec, {&fs}, /*deployment=*/nullptr);
  ASSERT_TRUE(fleet.Setup().ok());

  FleetConfig config;
  config.clients = 5000;
  config.offered_ops_per_s = 2000;
  config.duration = 2 * kSecond;
  config.drain_grace = 2 * kSecond;
  config.workers = 8;
  config.seed = 7;
  FleetResult result = fleet.Run(config);

  // Open-loop arrival count tracks rate * window (Poisson, 5-sigma).
  EXPECT_NEAR(static_cast<double>(result.issued), 4000.0,
              5 * std::sqrt(4000.0));
  // The instant clock has no host-CPU backpressure: everything issued must
  // execute, error-free, and be accounted exactly once.
  EXPECT_EQ(result.executed, result.issued);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.latency.count(), result.executed);
  uint64_t per_op_total = 0;
  for (uint64_t c : result.per_op_issued) {
    per_op_total += c;
  }
  EXPECT_EQ(per_op_total, result.issued);
  EXPECT_GT(result.touched_clients, 0u);
  EXPECT_LE(result.touched_clients, config.clients);
  EXPECT_GT(result.achieved_ops_per_s, 0.0);
  // No coordination plane behind LocalFs.
  EXPECT_EQ(result.coord_msgs_per_op, 0.0);
}

TEST(ClientFleetTest, SameSeedReplaysIdenticalMix) {
  auto env = Environment::Instant();
  LocalFs fs(env.get());
  auto spec = BuiltinPersonality("fileserver");
  ASSERT_TRUE(spec.ok());
  spec->fileset_files = 16;
  spec->file_size = 1024;
  spec->append_size = 256;

  std::array<uint64_t, kScenarioOpCount> mixes[2];
  for (int round = 0; round < 2; ++round) {
    ClientFleet fleet(env.get(), *spec, {&fs}, nullptr);
    ASSERT_TRUE(fleet.Setup().ok());
    FleetConfig config;
    config.clients = 1000;
    config.offered_ops_per_s = 500;
    config.duration = 2 * kSecond;
    config.workers = 4;
    config.seed = 1234;
    mixes[round] = fleet.Run(config).per_op_issued;
  }
  EXPECT_EQ(mixes[0], mixes[1]);
}

}  // namespace
}  // namespace scfs
