// Unit tests for the async storage pipeline's completion primitive:
// Future/Promise, the WhenAll / WhenQuorum combinators, thread-charge
// propagation (max-of-children, never sum) and callback ordering.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/sim/environment.h"

namespace scfs {
namespace {

TEST(FutureTest, ReadyFutureIsImmediatelyAvailable) {
  Future<int> f = Future<int>::Ready(42);
  ASSERT_TRUE(f.valid());
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.Get(), 42);
  EXPECT_EQ(f.charge(), 0);
}

TEST(FutureTest, DefaultConstructedIsInvalid) {
  Future<int> f;
  EXPECT_FALSE(f.valid());
}

TEST(FutureTest, PromiseFulfillsAcrossThreads) {
  Promise<std::string> promise;
  Future<std::string> future = promise.future();
  EXPECT_FALSE(future.ready());
  std::thread producer([&] { promise.Set("done", 7); });
  EXPECT_EQ(future.Get(), "done");
  producer.join();
  EXPECT_EQ(future.charge(), 7);
}

TEST(FutureTest, GetChargesTheWaiterWithProducerCharge) {
  Promise<int> promise;
  promise.Set(1, 5 * kMillisecond);
  Environment::ResetThreadCharged();
  EXPECT_EQ(promise.future().Get(), 1);
  EXPECT_EQ(Environment::ThreadCharged(), 5 * kMillisecond);
}

TEST(FutureTest, WaitDoesNotCharge) {
  Promise<int> promise;
  promise.Set(1, 5 * kMillisecond);
  Environment::ResetThreadCharged();
  promise.future().Wait();
  EXPECT_EQ(Environment::ThreadCharged(), 0);
}

TEST(FutureTest, CallbacksRunInRegistrationOrder) {
  Promise<int> promise;
  Future<int> future = promise.future();
  std::vector<int> order;
  future.OnReady([&](const int&, VirtualDuration) { order.push_back(1); });
  future.OnReady([&](const int&, VirtualDuration) { order.push_back(2); });
  future.OnReady([&](const int&, VirtualDuration) { order.push_back(3); });
  promise.Set(0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  // A callback registered after completion runs immediately, inline.
  bool ran = false;
  future.OnReady([&](const int& v, VirtualDuration c) {
    ran = true;
    EXPECT_EQ(v, 0);
    EXPECT_EQ(c, 0);
  });
  EXPECT_TRUE(ran);
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

TEST(WhenAllTest, CombinesResultsAndChargesMaxOfChildren) {
  Promise<int> a, b, c;
  Future<std::vector<int>> all =
      WhenAll<int>({a.future(), b.future(), c.future()});
  a.Set(1, 5 * kMillisecond);
  b.Set(2, 10 * kMillisecond);
  EXPECT_FALSE(all.ready());
  c.Set(3, 7 * kMillisecond);
  ASSERT_TRUE(all.ready());
  Environment::ResetThreadCharged();
  EXPECT_EQ(all.Get(), (std::vector<int>{1, 2, 3}));
  // Parallel children cost the waiter the slowest branch, not the sum.
  EXPECT_EQ(Environment::ThreadCharged(), 10 * kMillisecond);
}

TEST(WhenAllTest, EmptyInputCompletesImmediately) {
  Future<std::vector<int>> all = WhenAll<int>({});
  ASSERT_TRUE(all.ready());
  EXPECT_TRUE(all.Get().empty());
}

TEST(WhenQuorumTest, CompletesAtQuorumWithoutStragglers) {
  Promise<int> a, b, c;
  Future<QuorumResult<int>> q =
      WhenQuorum<int>({a.future(), b.future(), c.future()}, 2);
  a.Set(10, 3 * kMillisecond);
  EXPECT_FALSE(q.ready());
  b.Set(20, 9 * kMillisecond);
  ASSERT_TRUE(q.ready());  // c still pending

  Environment::ResetThreadCharged();
  QuorumResult<int> result = q.Get();
  EXPECT_TRUE(result.quorum_reached);
  EXPECT_EQ(result.satisfied, 2u);
  ASSERT_TRUE(result.results[0].has_value());
  ASSERT_TRUE(result.results[1].has_value());
  EXPECT_FALSE(result.results[2].has_value());  // in flight at trigger time
  // Charged the quorum-closing arrival, not the slowest child.
  EXPECT_EQ(Environment::ThreadCharged(), 9 * kMillisecond);

  c.Set(30, 100 * kMillisecond);  // straggler is ignored, never crashes
  EXPECT_EQ(q.Get().satisfied, 2u);
}

TEST(WhenQuorumTest, PredicateFiltersFailures) {
  Promise<int> a, b, c;
  auto even = [](size_t, const int& v) { return v % 2 == 0; };
  Future<QuorumResult<int>> q =
      WhenQuorum<int>({a.future(), b.future(), c.future()}, 2, even);
  a.Set(1);  // fails predicate
  b.Set(2);
  EXPECT_FALSE(q.ready());  // only one satisfying reply so far
  c.Set(4);
  ASSERT_TRUE(q.ready());
  QuorumResult<int> result = q.Get();
  EXPECT_TRUE(result.quorum_reached);
  EXPECT_EQ(result.satisfied, 2u);
}

TEST(WhenQuorumTest, CompletesWhenAllDoneWithoutQuorum) {
  Promise<int> a, b;
  auto never = [](size_t, const int&) { return false; };
  Future<QuorumResult<int>> q =
      WhenQuorum<int>({a.future(), b.future()}, 1, never);
  a.Set(1);
  b.Set(2);
  ASSERT_TRUE(q.ready());
  QuorumResult<int> result = q.Get();
  EXPECT_FALSE(result.quorum_reached);
  EXPECT_EQ(result.satisfied, 0u);
  EXPECT_TRUE(result.results[0].has_value());
  EXPECT_TRUE(result.results[1].has_value());
}

TEST(WhenQuorumTest, PredicateSeesChildIndex) {
  Promise<int> a, b;
  std::vector<size_t> seen;
  Future<QuorumResult<int>> q = WhenQuorum<int>(
      {a.future(), b.future()}, 2, [&](size_t index, const int&) {
        seen.push_back(index);
        return true;
      });
  b.Set(2);
  a.Set(1);
  ASSERT_TRUE(q.ready());
  EXPECT_EQ(seen, (std::vector<size_t>{1, 0}));
}

// ---------------------------------------------------------------------------
// Executor integration
// ---------------------------------------------------------------------------

TEST(ExecutorTest, SubmitPropagatesModelledCharge) {
  auto env = Environment::Instant();
  Future<int> f = DefaultExecutor().Submit([&] {
    env->Sleep(12 * kMillisecond);
    return 99;
  });
  Environment::ResetThreadCharged();
  EXPECT_EQ(f.Get(), 99);
  EXPECT_EQ(Environment::ThreadCharged(), 12 * kMillisecond);
}

TEST(ExecutorTest, NestedSubmitDoesNotDeadlock) {
  // A task that blocks on tasks it spawns itself: the executor must grow
  // instead of starving (a DepSky write inside a background upload fans out
  // PUTs to the same executor).
  Future<int> outer = DefaultExecutor().Submit([] {
    std::vector<Future<int>> inner;
    for (int i = 0; i < 8; ++i) {
      inner.push_back(DefaultExecutor().Submit([i] { return i; }));
    }
    int sum = 0;
    for (auto& f : inner) {
      sum += f.Get();
    }
    return sum;
  });
  EXPECT_EQ(outer.Get(), 28);
}

TEST(ExecutorTest, ManyConcurrentWaitersComplete) {
  std::atomic<int> done{0};
  std::vector<Future<int>> fs;
  for (int i = 0; i < 64; ++i) {
    fs.push_back(DefaultExecutor().Submit([&done, i] {
      done.fetch_add(1);
      return i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(fs[i].Get(), i);
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ExecutorTest, InFlightTrackerWaitsForStragglers) {
  auto env = Environment::Scaled(0.001);
  std::atomic<bool> finished{false};
  {
    InFlightTracker tracker;
    (void)SubmitTracked(&tracker, [&] {
      env->Sleep(20 * kMillisecond);
      finished.store(true);
      return 0;
    });
    tracker.AwaitIdle();
  }
  EXPECT_TRUE(finished.load());
}

}  // namespace
}  // namespace scfs
