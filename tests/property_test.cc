// Property-based differential testing: random operation sequences are
// applied simultaneously to SCFS (over either backend, in every mode) and to
// a simple in-memory reference model; after every operation the observable
// behaviour (status class, file contents, stat, directory listings) must
// agree. This catches namespace/cache/locking bugs that example-based tests
// miss.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/path.h"
#include "src/common/rng.h"
#include "src/coord/command.h"
#include "src/coord/tuple_space.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

// A minimal always-correct model of the namespace SCFS should implement.
class ReferenceModel {
 public:
  bool Exists(const std::string& path) const { return files_.count(path) || dirs_.count(path); }

  Status WriteFile(const std::string& path, const Bytes& data) {
    const std::string parent = ParentPath(path);
    if (parent != "/" && dirs_.count(parent) == 0) {
      return NotFoundError(parent);
    }
    if (dirs_.count(path) > 0) {
      return IsDirectoryError(path);
    }
    files_[path] = data;
    return OkStatus();
  }

  Result<Bytes> ReadFile(const std::string& path) const {
    auto it = files_.find(path);
    if (it == files_.end()) {
      return NotFoundError(path);
    }
    return it->second;
  }

  Status Mkdir(const std::string& path) {
    if (Exists(path)) {
      return AlreadyExistsError(path);
    }
    const std::string parent = ParentPath(path);
    if (parent != "/" && dirs_.count(parent) == 0) {
      return NotFoundError(parent);
    }
    dirs_.insert(path);
    return OkStatus();
  }

  Status Unlink(const std::string& path) {
    if (dirs_.count(path) > 0) {
      return IsDirectoryError(path);
    }
    return files_.erase(path) > 0 ? OkStatus() : NotFoundError(path);
  }

  Status Rmdir(const std::string& path) {
    if (dirs_.count(path) == 0) {
      return files_.count(path) ? NotDirectoryError(path) : NotFoundError(path);
    }
    for (const auto& [file, data] : files_) {
      if (PathIsWithin(file, path) && file != path) {
        return NotEmptyError(path);
      }
    }
    for (const auto& dir : dirs_) {
      if (dir != path && PathIsWithin(dir, path)) {
        return NotEmptyError(path);
      }
    }
    dirs_.erase(path);
    return OkStatus();
  }

  Status Rename(const std::string& from, const std::string& to) {
    if (!Exists(from)) {
      return NotFoundError(from);
    }
    if (Exists(to) || PathIsWithin(to, from)) {
      return Exists(to) ? AlreadyExistsError(to)
                        : InvalidArgumentError("into own subtree");
    }
    const std::string parent = ParentPath(to);
    if (parent != "/" && dirs_.count(parent) == 0) {
      return NotFoundError(parent);
    }
    std::map<std::string, Bytes> moved_files;
    for (auto it = files_.begin(); it != files_.end();) {
      if (PathIsWithin(it->first, from)) {
        moved_files[to + it->first.substr(from.size())] = std::move(it->second);
        it = files_.erase(it);
      } else {
        ++it;
      }
    }
    std::set<std::string> moved_dirs;
    for (auto it = dirs_.begin(); it != dirs_.end();) {
      if (PathIsWithin(*it, from)) {
        moved_dirs.insert(to + it->substr(from.size()));
        it = dirs_.erase(it);
      } else {
        ++it;
      }
    }
    files_.merge(moved_files);
    dirs_.merge(moved_dirs);
    return OkStatus();
  }

  std::vector<std::string> List(const std::string& dir) const {
    std::vector<std::string> out;
    for (const auto& [path, data] : files_) {
      if (ParentPath(path) == dir) {
        out.push_back(Basename(path));
      }
    }
    for (const auto& path : dirs_) {
      if (ParentPath(path) == dir && path != dir) {
        out.push_back(Basename(path));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  const std::map<std::string, Bytes>& files() const { return files_; }
  const std::set<std::string>& dirs() const { return dirs_; }

 private:
  std::map<std::string, Bytes> files_;
  std::set<std::string> dirs_;
};

struct PropertyParam {
  ScfsBackendKind backend;
  ScfsMode mode;
  bool use_pns;
  uint64_t seed;
  // Lease-delegated metadata caching on: the differential run exercises the
  // grant/serve/revoke paths (and the write-credit pin) against the same
  // reference model — delegation must be behaviourally invisible.
  bool leases = false;
};

class ScfsPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(ScfsPropertyTest, RandomOpsMatchReferenceModel) {
  const auto param = GetParam();
  auto env = Environment::Instant();
  DeploymentOptions options;
  options.backend = param.backend;
  options.zero_latency = true;
  if (param.leases) {
    options.lease_ttl = 5 * kSecond;
  }
  auto deployment = Deployment::Create(env.get(), options);
  ScfsOptions fs_options;
  fs_options.mode = param.mode;
  fs_options.use_pns = param.use_pns;
  auto mounted = deployment->Mount("u", fs_options);
  ASSERT_TRUE(mounted.ok());
  auto& fs = *mounted;

  ReferenceModel model;
  Rng rng(param.seed);

  // A small pool of paths so operations collide interestingly.
  std::vector<std::string> dirs = {"/d1", "/d2", "/d1/sub"};
  std::vector<std::string> names = {"a", "b", "c"};
  auto random_path = [&]() {
    std::string dir = rng.Chance(0.25)
                          ? ""
                          : dirs[rng.UniformU64(dirs.size())];
    return dir + "/" + names[rng.UniformU64(names.size())];
  };
  auto random_dir = [&]() { return dirs[rng.UniformU64(dirs.size())]; };

  for (int step = 0; step < 300; ++step) {
    int op = static_cast<int>(rng.UniformU64(8));
    switch (op) {
      case 0: {  // write
        std::string path = random_path();
        Bytes data = rng.RandomBytes(rng.UniformU64(2048));
        Status got = fs->WriteFile(path, data);
        Status want = model.WriteFile(path, data);
        ASSERT_EQ(got.ok(), want.ok())
            << step << " write " << path << ": " << got.ToString() << " vs "
            << want.ToString();
        break;
      }
      case 1: {  // read
        std::string path = random_path();
        auto got = fs->ReadFile(path);
        auto want = model.ReadFile(path);
        ASSERT_EQ(got.ok(), want.ok()) << step << " read " << path;
        if (got.ok()) {
          ASSERT_EQ(*got, *want) << step << " read " << path;
        }
        break;
      }
      case 2: {  // mkdir
        std::string path = random_dir();
        Status got = fs->Mkdir(path);
        Status want = model.Mkdir(path);
        ASSERT_EQ(got.ok(), want.ok()) << step << " mkdir " << path;
        break;
      }
      case 3: {  // unlink
        std::string path = random_path();
        Status got = fs->Unlink(path);
        Status want = model.Unlink(path);
        ASSERT_EQ(got.ok(), want.ok()) << step << " unlink " << path;
        break;
      }
      case 4: {  // rmdir
        std::string path = random_dir();
        Status got = fs->Rmdir(path);
        Status want = model.Rmdir(path);
        ASSERT_EQ(got.ok(), want.ok())
            << step << " rmdir " << path << ": " << got.ToString() << " vs "
            << want.ToString();
        break;
      }
      case 5: {  // stat agreement
        std::string path = random_path();
        auto got = fs->Stat(path);
        bool want = model.Exists(path);
        ASSERT_EQ(got.ok(), want) << step << " stat " << path;
        if (got.ok() && model.files().count(path)) {
          ASSERT_EQ(got->size, model.files().at(path).size())
              << step << " stat size " << path;
        }
        break;
      }
      case 6: {  // readdir agreement on a random directory
        std::string dir = rng.Chance(0.3) ? "/" : random_dir();
        auto got = fs->ReadDir(dir);
        if (!got.ok()) {
          // Must only fail when the model has no such *directory* (it may
          // exist as a file after a rename, which is NOT_DIRECTORY).
          ASSERT_TRUE(model.dirs().count(dir) == 0 && dir != "/")
              << step << " readdir " << dir << ": " << got.status().ToString();
          break;
        }
        std::vector<std::string> got_names;
        for (const auto& entry : *got) {
          got_names.push_back(entry.name);
        }
        std::sort(got_names.begin(), got_names.end());
        ASSERT_EQ(got_names, model.List(dir)) << step << " readdir " << dir;
        break;
      }
      case 7: {  // rename (files and whole directories)
        std::string from = rng.Chance(0.5) ? random_path() : random_dir();
        std::string to = rng.Chance(0.5) ? random_path() : random_dir();
        Status got = fs->Rename(from, to);
        Status want = model.Rename(from, to);
        ASSERT_EQ(got.ok(), want.ok())
            << step << " rename " << from << " -> " << to << ": "
            << got.ToString() << " vs " << want.ToString();
        break;
      }
    }
  }

  // Final full-state comparison.
  fs->DrainBackground();
  for (const auto& [path, data] : model.files()) {
    auto got = fs->ReadFile(path);
    ASSERT_TRUE(got.ok()) << "final read " << path;
    EXPECT_EQ(*got, data) << "final content " << path;
  }
  (void)fs->Unmount();
}

// ---------------------------------------------------------------------------
// Lease protocol property test (ISSUE 9 satellite): randomized grant / renew
// / expire / revoke / release interleavings against the TupleSpace state
// machine on a fake clock (`now` is an explicit argument to Apply, so time
// advances exactly when the test says it does). Client-side holder views
// mirror the metadata service's serving discipline; after every step three
// invariants hold:
//
//   1. No conflicting holders: a view still serving (valid, unexpired on the
//      same clock) agrees exactly with the authoritative prefix contents —
//      no mutation has committed that the holder didn't hear about.
//   2. Bounded expiry: the server-side record's horizon equals the max of
//      the outstanding grants' (grant time + TTL) — extend-only, and never
//      beyond what some grant actually promised.
//   3. Revoke-commit precedes the mutation's ack: the mutation's own reply
//      names every live lease covering the key, and fanning those notices
//      out before treating the mutation as acked restores invariant 1.
// ---------------------------------------------------------------------------

TEST(LeasePropertyTest, RandomInterleavingsKeepLeaseInvariants) {
  const std::vector<std::string> prefixes = {"m:/a/", "m:/b/"};
  const std::vector<std::string> sessions = {"s0", "s1", "s2", "s3"};
  std::vector<std::string> keys;
  for (const auto& prefix : prefixes) {
    for (int i = 0; i < 3; ++i) {
      keys.push_back(prefix + "k" + std::to_string(i));
    }
  }

  auto cmd = [](CoordOp op, const std::string& key, const Bytes& value = {},
                uint64_t a = 0, const std::string& aux = "") {
    CoordCommand out;
    out.op = op;
    out.client = "alice";
    out.key = key;
    out.value = value;
    out.a = a;
    out.aux = aux;
    return out;
  };

  for (uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    TupleSpace space;
    Rng rng(seed);
    VirtualTime now = 1;

    // A holder's installed grant (the client side of the protocol).
    struct View {
      bool valid = false;
      uint64_t epoch = 0;
      VirtualTime expires_at = 0;
      std::map<std::string, Bytes> snapshot;
    };
    // views[session][prefix]
    std::map<std::string, std::map<std::string, View>> views;
    // Mirror of the server-side lease records: expiry horizon and holder
    // set, maintained from this test's own grant/release/revoke/expiry
    // bookkeeping — what the record MUST be if the state machine is right.
    struct Record {
      VirtualTime expires_at = 0;
      std::set<std::string> holders;
    };
    std::map<std::string, Record> records;

    auto purge_expired = [&] {
      for (auto it = records.begin(); it != records.end();) {
        if (it->second.expires_at <= now) {
          it = records.erase(it);
        } else {
          ++it;
        }
      }
    };

    // Invariant 1: every still-serving view agrees exactly with the
    // authoritative prefix contents (including negative lookups: the grant
    // snapshot is the WHOLE prefix).
    auto check_serving_views = [&] {
      for (const auto& [session, by_prefix] : views) {
        for (const auto& [prefix, view] : by_prefix) {
          if (!view.valid || now >= view.expires_at) {
            continue;
          }
          CoordReply truth =
              space.Apply(now, cmd(CoordOp::kReadPrefix, prefix));
          ASSERT_TRUE(truth.ok());
          std::map<std::string, Bytes> authoritative;
          for (const auto& entry : truth.entries) {
            authoritative[entry.key] = entry.value;
          }
          ASSERT_EQ(view.snapshot, authoritative)
              << "seed " << seed << ": holder " << session
              << " serves stale state for " << prefix << " at " << now;
        }
      }
    };

    for (int step = 0; step < 1500; ++step) {
      switch (rng.UniformU64(6)) {
        case 0: {  // the fake clock advances; holders expire themselves
          now += 1 + rng.UniformU64(60);
          break;
        }
        case 1:
        case 2: {  // grant or renew
          const std::string& session =
              sessions[rng.UniformU64(sessions.size())];
          const std::string& prefix =
              prefixes[rng.UniformU64(prefixes.size())];
          const uint64_t ttl = 20 + rng.UniformU64(100);
          purge_expired();
          CoordReply grant = space.Apply(
              now, cmd(CoordOp::kLeaseAcquire, prefix, {}, ttl, session));
          ASSERT_TRUE(grant.ok());
          // Invariant 2: extend-only, and exactly the max outstanding
          // promise — never beyond any grant's (time + TTL).
          Record& record = records[prefix];
          record.expires_at = std::max(
              record.expires_at, now + static_cast<VirtualDuration>(ttl));
          record.holders.insert(session);
          ASSERT_EQ(grant.a, static_cast<uint64_t>(record.expires_at))
              << "seed " << seed << " step " << step;
          View& view = views[session][prefix];
          view.valid = true;
          view.expires_at = static_cast<VirtualTime>(grant.a);
          ByteReader reader(grant.value);
          ASSERT_TRUE(reader.ReadU64(&view.epoch));
          view.snapshot.clear();
          for (const auto& entry : grant.entries) {
            view.snapshot[entry.key] = entry.value;
          }
          break;
        }
        case 3: {  // voluntary release
          const std::string& session =
              sessions[rng.UniformU64(sessions.size())];
          const std::string& prefix =
              prefixes[rng.UniformU64(prefixes.size())];
          purge_expired();
          space.Apply(now, cmd(CoordOp::kLeaseRelease, prefix, {}, 0,
                               session));
          views[session][prefix].valid = false;
          auto it = records.find(prefix);
          if (it != records.end()) {
            it->second.holders.erase(session);
            if (it->second.holders.empty()) {
              records.erase(it);
            }
          }
          break;
        }
        case 4:
        case 5: {  // mutation: write or remove a key
          const std::string& key = keys[rng.UniformU64(keys.size())];
          purge_expired();
          // Invariant 3 (completeness): every live lease covering the key
          // must be named in the mutation's own reply.
          std::set<std::string> must_revoke;
          for (const auto& [prefix, record] : records) {
            if (key.compare(0, prefix.size(), prefix) == 0) {
              must_revoke.insert(prefix);
            }
          }
          CoordReply reply =
              rng.Chance(0.7)
                  ? space.Apply(now, cmd(CoordOp::kWrite, key,
                                         rng.RandomBytes(8)))
                  : space.Apply(now, cmd(CoordOp::kRemove, key));
          std::set<std::string> revoked;
          for (const auto& revocation : reply.revoked) {
            revoked.insert(revocation.prefix);
          }
          if (!reply.ok()) {
            // A failed mutation (e.g. removing a missing key) leaves the
            // state untouched and must revoke nothing.
            ASSERT_TRUE(revoked.empty())
                << "seed " << seed << " step " << step;
            must_revoke.clear();
          }
          ASSERT_EQ(revoked, must_revoke)
              << "seed " << seed << " step " << step << " mutating " << key;
          // The notices fan out to every holder BEFORE the ack...
          for (const auto& prefix : revoked) {
            records.erase(prefix);
            for (auto& [session, by_prefix] : views) {
              auto it = by_prefix.find(prefix);
              if (it != by_prefix.end()) {
                it->second.valid = false;
              }
            }
          }
          break;
        }
      }
      // ...so at every ack boundary, nobody serves stale state.
      check_serving_views();
    }
  }
}

std::vector<PropertyParam> MakeParams() {
  std::vector<PropertyParam> params;
  uint64_t seed = 1000;
  for (auto backend : {ScfsBackendKind::kAws, ScfsBackendKind::kCoc}) {
    for (auto mode : {ScfsMode::kBlocking, ScfsMode::kNonBlocking,
                      ScfsMode::kNonSharing}) {
      for (bool pns : {false, true}) {
        if (mode == ScfsMode::kNonSharing && pns) {
          continue;  // NS implies PNS already
        }
        params.push_back(PropertyParam{backend, mode, pns, seed});
        seed += 77;
      }
    }
  }
  // Lease-enabled variants (CoC only; leases need a coordination service):
  // the same differential battery with delegation live end to end.
  for (auto mode : {ScfsMode::kBlocking, ScfsMode::kNonBlocking}) {
    params.push_back(PropertyParam{ScfsBackendKind::kCoc, mode, false, seed,
                                   /*leases=*/true});
    seed += 77;
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ScfsPropertyTest, ::testing::ValuesIn(MakeParams()),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      std::string name =
          info.param.backend == ScfsBackendKind::kAws ? "Aws" : "CoC";
      switch (info.param.mode) {
        case ScfsMode::kBlocking:
          name += "Blocking";
          break;
        case ScfsMode::kNonBlocking:
          name += "NonBlocking";
          break;
        case ScfsMode::kNonSharing:
          name += "NonSharing";
          break;
      }
      if (info.param.use_pns) {
        name += "Pns";
      }
      if (info.param.leases) {
        name += "Leases";
      }
      return name;
    });

}  // namespace
}  // namespace scfs
