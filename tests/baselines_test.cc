// Tests for the Table 3 / Figure 9 baselines: LocalFS, S3FS-like, S3QL-like
// and the Dropbox synchronization model.

#include <gtest/gtest.h>

#include "src/baselines/dropbox_sim.h"
#include "src/baselines/local_fs.h"
#include "src/baselines/s3_baselines.h"
#include "src/cloud/simulated_cloud.h"

namespace scfs {
namespace {

CloudProfile TestCloud() {
  CloudProfile p;
  p.name = "test";
  return p;
}

TEST(LocalFsTest, RoundTripAndNamespace) {
  auto env = Environment::Instant();
  LocalFs fs(env.get());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.WriteFile("/d/f", ToBytes("hello")).ok());
  EXPECT_EQ(ToString(*fs.ReadFile("/d/f")), "hello");
  EXPECT_EQ(fs.Stat("/d/f")->size, 5u);
  EXPECT_EQ(fs.ReadDir("/d")->size(), 1u);
  ASSERT_TRUE(fs.Rename("/d/f", "/d/g").ok());
  EXPECT_EQ(ToString(*fs.ReadFile("/d/g")), "hello");
  ASSERT_TRUE(fs.Unlink("/d/g").ok());
  ASSERT_TRUE(fs.Rmdir("/d").ok());
}

TEST(LocalFsTest, ChargesDiskOnDirtyCloseOnly) {
  auto env = Environment::Instant();
  LocalFs fs(env.get());
  ASSERT_TRUE(fs.WriteFile("/f", ToBytes("x")).ok());
  Environment::ResetThreadCharged();
  auto fh = fs.Open("/f", kOpenRead);
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(fs.Close(*fh).ok());
  EXPECT_EQ(Environment::ThreadCharged(), 0);  // clean close is free
}

TEST(S3fsTest, BlockingCloseWritesToCloud) {
  auto env = Environment::Instant();
  SimulatedCloud cloud(TestCloud(), env.get(), 1);
  S3fsLike fs(env.get(), &cloud, {"u"});
  ASSERT_TRUE(fs.WriteFile("/f", ToBytes("data")).ok());
  // Object durable in the cloud immediately after close returns.
  auto obj = cloud.Get({"u"}, "s3fs:/f");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(ToString(*obj), "data");
}

TEST(S3fsTest, EveryOpenFetchesFromCloud) {
  auto env = Environment::Instant();
  SimulatedCloud cloud(TestCloud(), env.get(), 1);
  S3fsLike fs(env.get(), &cloud, {"u"});
  ASSERT_TRUE(fs.WriteFile("/f", ToBytes("data")).ok());
  uint64_t gets_before = cloud.costs().Totals("u").gets;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fs.ReadFile("/f").ok());
  }
  EXPECT_GE(cloud.costs().Totals("u").gets, gets_before + 3);
}

TEST(S3qlTest, WriteBackIsAsync) {
  auto env = Environment::Instant();
  SimulatedCloud cloud(TestCloud(), env.get(), 1);
  {
    S3qlLike fs(env.get(), &cloud, {"u"});
    ASSERT_TRUE(fs.WriteFile("/f", ToBytes("lazy")).ok());
    fs.DrainBackground();
    auto obj = cloud.Get({"u"}, "s3ql:/f");
    ASSERT_TRUE(obj.ok());
    EXPECT_EQ(ToString(*obj), "lazy");
    // Reads come from the local cache, not the cloud.
    uint64_t gets = cloud.costs().Totals("u").gets;
    ASSERT_TRUE(fs.ReadFile("/f").ok());
    EXPECT_EQ(cloud.costs().Totals("u").gets, gets);
  }
}

TEST(S3qlTest, SmallWritePenaltyCharged) {
  auto env = Environment::Instant();
  SimulatedCloud cloud(TestCloud(), env.get(), 1);
  S3qlLike fs(env.get(), &cloud, {"u"});
  auto fh = fs.Open("/f", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fh.ok());
  Environment::ResetThreadCharged();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fs.Write(*fh, i * 4096, Bytes(4096, 1)).ok());
  }
  // 100 small writes at ~0.45 ms each.
  EXPECT_GE(Environment::ThreadCharged(), 100 * FromMillis(0.4));
  ASSERT_TRUE(fs.Close(*fh).ok());
  fs.DrainBackground();
}

TEST(S3BaselinesTest, NoSharingSupport) {
  auto env = Environment::Instant();
  SimulatedCloud cloud(TestCloud(), env.get(), 1);
  S3fsLike s3fs(env.get(), &cloud, {"u"});
  S3qlLike s3ql(env.get(), &cloud, {"u"});
  EXPECT_EQ(s3fs.SetFacl("/f", "bob", true, false).code(),
            ErrorCode::kNotSupported);
  EXPECT_EQ(s3ql.SetFacl("/f", "bob", true, false).code(),
            ErrorCode::kNotSupported);
}

TEST(DropboxSimTest, LatencyGrowsWithSize) {
  auto env = Environment::Instant();
  DropboxSim dropbox(env.get());
  // Average over a few trials to smooth the jitter.
  auto average = [&](size_t size) {
    VirtualDuration total = 0;
    for (int i = 0; i < 10; ++i) {
      total += dropbox.ShareFile(size);
    }
    return total / 10;
  };
  VirtualDuration small = average(256 * 1024);
  VirtualDuration large = average(16 * 1024 * 1024);
  EXPECT_GT(large, small + 10 * kSecond);  // 16 MB uploads dominate
  EXPECT_GT(small, 5 * kSecond);           // floor: monitor + poll cycles
}

TEST(DropboxSimTest, FloorEvenForTinyFiles) {
  auto env = Environment::Instant();
  DropboxSim dropbox(env.get());
  // The monitor + polling floor is what SCFS's blocking mode beats.
  EXPECT_GT(dropbox.ShareFile(1), 5 * kSecond);
}

}  // namespace
}  // namespace scfs
