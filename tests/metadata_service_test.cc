// Unit tests for the SCFS metadata service: serialization, the short-term
// cache (hits, expiration, invalidation), private name spaces (mount, flush,
// promotion/demotion, the second-session lock) and tombstones.

#include <gtest/gtest.h>

#include "src/cloud/simulated_cloud.h"
#include "src/coord/local_coordination.h"
#include "src/scfs/metadata_service.h"

namespace scfs {
namespace {

FileMetadata SampleMetadata(const std::string& path) {
  FileMetadata md;
  md.path = path;
  md.type = FileType::kFile;
  md.size = 123;
  md.mtime = 456;
  md.ctime = 789;
  md.owner = "alice";
  md.object_id = "alice-xyz";
  md.content_hash = "abcd";
  md.version = 7;
  md.acl["bob"] = 1;
  md.acl["carol"] = 3;
  return md;
}

TEST(FileMetadataTest, EncodeDecodeRoundTrip) {
  FileMetadata md = SampleMetadata("/a/b");
  auto decoded = FileMetadata::Decode(md.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->path, "/a/b");
  EXPECT_EQ(decoded->size, 123u);
  EXPECT_EQ(decoded->owner, "alice");
  EXPECT_EQ(decoded->object_id, "alice-xyz");
  EXPECT_EQ(decoded->content_hash, "abcd");
  EXPECT_EQ(decoded->version, 7u);
  ASSERT_EQ(decoded->acl.size(), 2u);
  EXPECT_EQ(decoded->acl.at("carol"), 3);
}

TEST(FileMetadataTest, DecodeRejectsTruncation) {
  FileMetadata md = SampleMetadata("/a");
  Bytes encoded = md.Encode();
  encoded.resize(encoded.size() / 2);
  EXPECT_FALSE(FileMetadata::Decode(encoded).ok());
}

TEST(FileMetadataTest, AclSemantics) {
  FileMetadata md = SampleMetadata("/a");
  EXPECT_TRUE(md.AllowsRead("alice"));   // owner
  EXPECT_TRUE(md.AllowsWrite("alice"));
  EXPECT_TRUE(md.AllowsRead("bob"));     // read-only grant
  EXPECT_FALSE(md.AllowsWrite("bob"));
  EXPECT_TRUE(md.AllowsWrite("carol"));  // rw grant
  EXPECT_FALSE(md.AllowsRead("eve"));
  EXPECT_TRUE(md.IsShared());
}

TEST(PrivateNameSpaceTest, EncodeDecodeRoundTrip) {
  PrivateNameSpace pns;
  pns.entries["/a"] = SampleMetadata("/a");
  pns.entries["/b/c"] = SampleMetadata("/b/c");
  pns.tombstones = {"obj-1", "obj-2"};
  auto decoded = PrivateNameSpace::Decode(pns.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries.at("/b/c").size, 123u);
  ASSERT_EQ(decoded->tombstones.size(), 2u);
  EXPECT_EQ(decoded->tombstones[1], "obj-2");
}

class MetadataServiceTest : public ::testing::Test {
 protected:
  MetadataServiceTest()
      : env_(Environment::Instant()),
        cloud_(CloudProfile{}, env_.get(), 1),
        backend_(&cloud_, CloudCredentials{"u"}),
        coord_(env_.get(), LatencyModel::None()) {
    StorageServiceOptions storage_options;
    storage_ = std::make_unique<StorageService>(env_.get(), &backend_,
                                                storage_options);
  }

  MetadataService MakeService(MetadataServiceOptions options,
                              const std::string& user = "alice") {
    return MetadataService(env_.get(),
                           options.non_sharing ? nullptr : &coord_,
                           storage_.get(), user, options);
  }

  std::unique_ptr<Environment> env_;
  SimulatedCloud cloud_;
  SingleCloudBackend backend_;
  LocalCoordination coord_;
  std::unique_ptr<StorageService> storage_;
};

TEST_F(MetadataServiceTest, PutGetThroughCoordination) {
  auto service = MakeService({});
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/f")).ok());
  auto got = service.Get("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->object_id, "alice-xyz");
  // It is really in the coordination service.
  EXPECT_TRUE(coord_.Read("alice", MetadataKey("/f")).ok());
}

TEST_F(MetadataServiceTest, CacheHitsWithinTtlThenExpires) {
  MetadataServiceOptions options;
  options.cache_ttl = 100 * kMillisecond;
  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/f")).ok());

  uint64_t reads0 = service.coord_reads();
  ASSERT_TRUE(service.Get("/f").ok());  // cache hit (cached by Put)
  EXPECT_EQ(service.coord_reads(), reads0);
  EXPECT_GE(service.cache_hits(), 1u);

  env_->Sleep(200 * kMillisecond);  // past the TTL
  ASSERT_TRUE(service.Get("/f").ok());
  EXPECT_EQ(service.coord_reads(), reads0 + 1);  // had to go to coord
}

TEST_F(MetadataServiceTest, ZeroTtlAlwaysReadsCoordination) {
  MetadataServiceOptions options;
  options.cache_ttl = 0;
  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/f")).ok());
  uint64_t reads0 = service.coord_reads();
  env_->Sleep(1);
  ASSERT_TRUE(service.Get("/f").ok());
  env_->Sleep(1);
  ASSERT_TRUE(service.Get("/f").ok());
  EXPECT_EQ(service.coord_reads(), reads0 + 2);
}

TEST_F(MetadataServiceTest, LocalOverrideSurvivesTtlUntilPublished) {
  MetadataServiceOptions options;
  options.cache_ttl = kMillisecond;
  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  FileMetadata stale = SampleMetadata("/f");
  stale.version = 1;
  ASSERT_TRUE(service.Put(stale).ok());

  FileMetadata fresh = stale;
  fresh.version = 2;
  fresh.content_hash = "ffff";
  service.CacheLocally(fresh);  // pending close, not yet in coord
  env_->Sleep(10 * kSecond);    // far past the TTL

  auto got = service.Get("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->version, 2u);  // the override, not coord's stale copy

  // After the (background) Put publishes it, the override is dropped and
  // coord agrees.
  ASSERT_TRUE(service.Put(fresh).ok());
  env_->Sleep(10 * kSecond);
  got = service.Get("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->version, 2u);
}

TEST_F(MetadataServiceTest, PnsMountFlushRemount) {
  MetadataServiceOptions options;
  options.use_pns = true;
  {
    auto service = MakeService(options);
    ASSERT_TRUE(service.Mount().ok());
    ASSERT_TRUE(service.Create(SampleMetadata("/private")).ok());
    ASSERT_TRUE(service.Unmount().ok());  // flushes the PNS object
  }
  // No per-file tuple was created; only the PNS tuple exists.
  EXPECT_FALSE(coord_.Read("alice", MetadataKey("/private")).ok());
  EXPECT_TRUE(coord_.Read("alice", PnsTupleKey("alice")).ok());

  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  auto got = service.Get("/private");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->object_id, "alice-xyz");
  ASSERT_TRUE(service.Unmount().ok());
}

TEST_F(MetadataServiceTest, PnsSecondSessionIsLockedOut) {
  MetadataServiceOptions options;
  options.use_pns = true;
  options.session = "alice@laptop";
  auto first = MakeService(options);
  ASSERT_TRUE(first.Mount().ok());

  MetadataServiceOptions second_options = options;
  second_options.session = "alice@desktop";
  auto second = MakeService(second_options);
  EXPECT_EQ(second.Mount().code(), ErrorCode::kBusy);

  ASSERT_TRUE(first.Unmount().ok());
  auto third = MakeService(second_options);
  EXPECT_TRUE(third.Mount().ok());
  ASSERT_TRUE(third.Unmount().ok());
}

TEST_F(MetadataServiceTest, PromoteAndDemote) {
  MetadataServiceOptions options;
  options.use_pns = true;
  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  FileMetadata md = SampleMetadata("/doc");
  md.acl.clear();
  ASSERT_TRUE(service.Create(md).ok());
  EXPECT_FALSE(coord_.Read("alice", MetadataKey("/doc")).ok());

  md.acl["bob"] = 1;
  ASSERT_TRUE(service.PromoteToShared(md).ok());
  EXPECT_TRUE(coord_.Read("alice", MetadataKey("/doc")).ok());
  EXPECT_TRUE(service.Get("/doc").ok());

  md.acl.clear();
  ASSERT_TRUE(service.DemoteToPrivate(md).ok());
  EXPECT_FALSE(coord_.Read("alice", MetadataKey("/doc")).ok());
  EXPECT_TRUE(service.Get("/doc").ok());
  ASSERT_TRUE(service.Unmount().ok());
}

TEST_F(MetadataServiceTest, TombstonesRoundTrip) {
  auto service = MakeService({});
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.AddTombstone("obj-1").ok());
  ASSERT_TRUE(service.AddTombstone("obj-2").ok());
  auto listed = service.ListTombstones();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);
  ASSERT_TRUE(service.RemoveTombstone("obj-1").ok());
  listed = service.ListTombstones();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0], "obj-2");
}

TEST_F(MetadataServiceTest, RenameSubtreeMovesEverything) {
  auto service = MakeService({});
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/d")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/d/f1")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/d/sub/f2")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/dx")).ok());  // prefix sibling

  ASSERT_TRUE(service.RenameSubtree("/d", "/e").ok());
  service.InvalidateCache("/d");
  service.InvalidateCache("/dx");
  EXPECT_TRUE(service.Get("/e/f1").ok());
  EXPECT_TRUE(service.Get("/e/sub/f2").ok());
  EXPECT_FALSE(service.Get("/d/f1").ok());
  // The sibling with a common name prefix must be untouched.
  EXPECT_TRUE(service.Get("/dx").ok());
}

}  // namespace
}  // namespace scfs
