// Unit tests for the SCFS metadata service: serialization, the short-term
// cache (hits, expiration, invalidation), private name spaces (mount, flush,
// promotion/demotion, the second-session lock) and tombstones.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/cloud/simulated_cloud.h"
#include "src/coord/local_coordination.h"
#include "src/coord/partitioned_coordination.h"
#include "src/scfs/metadata_service.h"

namespace scfs {
namespace {

FileMetadata SampleMetadata(const std::string& path) {
  FileMetadata md;
  md.path = path;
  md.type = FileType::kFile;
  md.size = 123;
  md.mtime = 456;
  md.ctime = 789;
  md.owner = "alice";
  md.object_id = "alice-xyz";
  md.content_hash = "abcd";
  md.version = 7;
  md.acl["bob"] = 1;
  md.acl["carol"] = 3;
  return md;
}

TEST(FileMetadataTest, EncodeDecodeRoundTrip) {
  FileMetadata md = SampleMetadata("/a/b");
  auto decoded = FileMetadata::Decode(md.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->path, "/a/b");
  EXPECT_EQ(decoded->size, 123u);
  EXPECT_EQ(decoded->owner, "alice");
  EXPECT_EQ(decoded->object_id, "alice-xyz");
  EXPECT_EQ(decoded->content_hash, "abcd");
  EXPECT_EQ(decoded->version, 7u);
  ASSERT_EQ(decoded->acl.size(), 2u);
  EXPECT_EQ(decoded->acl.at("carol"), 3);
}

TEST(FileMetadataTest, DecodeRejectsTruncation) {
  FileMetadata md = SampleMetadata("/a");
  Bytes encoded = md.Encode();
  encoded.resize(encoded.size() / 2);
  EXPECT_FALSE(FileMetadata::Decode(encoded).ok());
}

TEST(FileMetadataTest, AclSemantics) {
  FileMetadata md = SampleMetadata("/a");
  EXPECT_TRUE(md.AllowsRead("alice"));   // owner
  EXPECT_TRUE(md.AllowsWrite("alice"));
  EXPECT_TRUE(md.AllowsRead("bob"));     // read-only grant
  EXPECT_FALSE(md.AllowsWrite("bob"));
  EXPECT_TRUE(md.AllowsWrite("carol"));  // rw grant
  EXPECT_FALSE(md.AllowsRead("eve"));
  EXPECT_TRUE(md.IsShared());
}

TEST(PrivateNameSpaceTest, EncodeDecodeRoundTrip) {
  PrivateNameSpace pns;
  pns.entries["/a"] = SampleMetadata("/a");
  pns.entries["/b/c"] = SampleMetadata("/b/c");
  pns.tombstones = {"obj-1", "obj-2"};
  auto decoded = PrivateNameSpace::Decode(pns.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries.at("/b/c").size, 123u);
  ASSERT_EQ(decoded->tombstones.size(), 2u);
  EXPECT_EQ(decoded->tombstones[1], "obj-2");
}

class MetadataServiceTest : public ::testing::Test {
 protected:
  MetadataServiceTest()
      : env_(Environment::Instant()),
        cloud_(CloudProfile{}, env_.get(), 1),
        backend_(&cloud_, CloudCredentials{"u"}),
        coord_(env_.get(), LatencyModel::None()) {
    StorageServiceOptions storage_options;
    storage_ = std::make_unique<StorageService>(env_.get(), &backend_,
                                                storage_options);
  }

  MetadataService MakeService(MetadataServiceOptions options,
                              const std::string& user = "alice") {
    return MetadataService(env_.get(),
                           options.non_sharing ? nullptr : &coord_,
                           storage_.get(), user, options);
  }

  std::unique_ptr<Environment> env_;
  SimulatedCloud cloud_;
  SingleCloudBackend backend_;
  LocalCoordination coord_;
  std::unique_ptr<StorageService> storage_;
};

TEST_F(MetadataServiceTest, PutGetThroughCoordination) {
  auto service = MakeService({});
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/f")).ok());
  auto got = service.Get("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->object_id, "alice-xyz");
  // It is really in the coordination service.
  EXPECT_TRUE(coord_.Read("alice", MetadataKey("/f")).ok());
}

TEST_F(MetadataServiceTest, CacheHitsWithinTtlThenExpires) {
  MetadataServiceOptions options;
  options.cache_ttl = 100 * kMillisecond;
  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/f")).ok());

  uint64_t reads0 = service.coord_reads();
  ASSERT_TRUE(service.Get("/f").ok());  // cache hit (cached by Put)
  EXPECT_EQ(service.coord_reads(), reads0);
  EXPECT_GE(service.cache_hits(), 1u);

  env_->Sleep(200 * kMillisecond);  // past the TTL
  ASSERT_TRUE(service.Get("/f").ok());
  EXPECT_EQ(service.coord_reads(), reads0 + 1);  // had to go to coord
}

TEST_F(MetadataServiceTest, ZeroTtlAlwaysReadsCoordination) {
  MetadataServiceOptions options;
  options.cache_ttl = 0;
  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/f")).ok());
  uint64_t reads0 = service.coord_reads();
  env_->Sleep(1);
  ASSERT_TRUE(service.Get("/f").ok());
  env_->Sleep(1);
  ASSERT_TRUE(service.Get("/f").ok());
  EXPECT_EQ(service.coord_reads(), reads0 + 2);
}

TEST_F(MetadataServiceTest, LocalOverrideSurvivesTtlUntilPublished) {
  MetadataServiceOptions options;
  options.cache_ttl = kMillisecond;
  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  FileMetadata stale = SampleMetadata("/f");
  stale.version = 1;
  ASSERT_TRUE(service.Put(stale).ok());

  FileMetadata fresh = stale;
  fresh.version = 2;
  fresh.content_hash = "ffff";
  service.CacheLocally(fresh);  // pending close, not yet in coord
  env_->Sleep(10 * kSecond);    // far past the TTL

  auto got = service.Get("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->version, 2u);  // the override, not coord's stale copy

  // After the (background) Put publishes it, the override is dropped and
  // coord agrees.
  ASSERT_TRUE(service.Put(fresh).ok());
  env_->Sleep(10 * kSecond);
  got = service.Get("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->version, 2u);
}

TEST_F(MetadataServiceTest, PnsMountFlushRemount) {
  MetadataServiceOptions options;
  options.use_pns = true;
  {
    auto service = MakeService(options);
    ASSERT_TRUE(service.Mount().ok());
    ASSERT_TRUE(service.Create(SampleMetadata("/private")).ok());
    ASSERT_TRUE(service.Unmount().ok());  // flushes the PNS object
  }
  // No per-file tuple was created; only the PNS tuple exists.
  EXPECT_FALSE(coord_.Read("alice", MetadataKey("/private")).ok());
  EXPECT_TRUE(coord_.Read("alice", PnsTupleKey("alice")).ok());

  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  auto got = service.Get("/private");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->object_id, "alice-xyz");
  ASSERT_TRUE(service.Unmount().ok());
}

TEST_F(MetadataServiceTest, PnsSecondSessionIsLockedOut) {
  MetadataServiceOptions options;
  options.use_pns = true;
  options.session = "alice@laptop";
  auto first = MakeService(options);
  ASSERT_TRUE(first.Mount().ok());

  MetadataServiceOptions second_options = options;
  second_options.session = "alice@desktop";
  auto second = MakeService(second_options);
  EXPECT_EQ(second.Mount().code(), ErrorCode::kBusy);

  ASSERT_TRUE(first.Unmount().ok());
  auto third = MakeService(second_options);
  EXPECT_TRUE(third.Mount().ok());
  ASSERT_TRUE(third.Unmount().ok());
}

TEST_F(MetadataServiceTest, PromoteAndDemote) {
  MetadataServiceOptions options;
  options.use_pns = true;
  auto service = MakeService(options);
  ASSERT_TRUE(service.Mount().ok());
  FileMetadata md = SampleMetadata("/doc");
  md.acl.clear();
  ASSERT_TRUE(service.Create(md).ok());
  EXPECT_FALSE(coord_.Read("alice", MetadataKey("/doc")).ok());

  md.acl["bob"] = 1;
  ASSERT_TRUE(service.PromoteToShared(md).ok());
  EXPECT_TRUE(coord_.Read("alice", MetadataKey("/doc")).ok());
  EXPECT_TRUE(service.Get("/doc").ok());

  md.acl.clear();
  ASSERT_TRUE(service.DemoteToPrivate(md).ok());
  EXPECT_FALSE(coord_.Read("alice", MetadataKey("/doc")).ok());
  EXPECT_TRUE(service.Get("/doc").ok());
  ASSERT_TRUE(service.Unmount().ok());
}

TEST_F(MetadataServiceTest, TombstonesRoundTrip) {
  auto service = MakeService({});
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.AddTombstone("obj-1").ok());
  ASSERT_TRUE(service.AddTombstone("obj-2").ok());
  auto listed = service.ListTombstones();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);
  ASSERT_TRUE(service.RemoveTombstone("obj-1").ok());
  listed = service.ListTombstones();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0], "obj-2");
}

TEST_F(MetadataServiceTest, RenameSubtreeMovesEverything) {
  auto service = MakeService({});
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/d")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/d/f1")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/d/sub/f2")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/dx")).ok());  // prefix sibling

  ASSERT_TRUE(service.RenameSubtree("/d", "/e").ok());
  service.InvalidateCache("/d");
  service.InvalidateCache("/dx");
  EXPECT_TRUE(service.Get("/e/f1").ok());
  EXPECT_TRUE(service.Get("/e/sub/f2").ok());
  EXPECT_FALSE(service.Get("/d/f1").ok());
  // The sibling with a common name prefix must be untouched.
  EXPECT_TRUE(service.Get("/dx").ok());
}

// ---------------------------------------------------------------------------
// Cross-partition rename over the partitioned coordination plane: the
// intent-record protocol, its crash-recovery replay, and leader failure in
// the middle of a move.
// ---------------------------------------------------------------------------

class PartitionedRenameTest : public ::testing::Test {
 protected:
  static PartitionedCoordinationConfig PartitionConfig() {
    PartitionedCoordinationConfig config;
    config.partitions = 4;
    config.smr.f = 1;
    config.smr.byzantine = true;
    config.smr.client_link = LatencyModel::Fixed(2 * kMillisecond);
    config.smr.replica_link = LatencyModel::Fixed(kMillisecond);
    config.smr.client_timeout = 2000 * kMillisecond;
    config.smr.order_timeout = 600 * kMillisecond;
    return config;
  }

  PartitionedRenameTest()
      : env_(Environment::Scaled(1e-3)),
        cloud_(CloudProfile{}, env_.get(), 1),
        backend_(&cloud_, CloudCredentials{"u"}),
        coord_(env_.get(), PartitionConfig(), 11) {
    storage_ = std::make_unique<StorageService>(env_.get(), &backend_,
                                                StorageServiceOptions{});
  }

  MetadataService MakeService(const std::string& user = "alice") {
    return MetadataService(env_.get(), &coord_, storage_.get(), user, {});
  }

  // No intent or commit record may survive a completed (or replayed) move.
  void ExpectNoRenameRecords() {
    auto intents = coord_.ReadPrefix("alice", kRenameIntentPrefix);
    ASSERT_TRUE(intents.ok());
    EXPECT_TRUE(intents->empty());
    auto commits = coord_.ReadPrefix("alice", kRenameCommitPrefix);
    ASSERT_TRUE(commits.ok());
    EXPECT_TRUE(commits->empty());
  }

  std::unique_ptr<Environment> env_;
  SimulatedCloud cloud_;
  SingleCloudBackend backend_;
  PartitionedCoordination coord_;
  std::unique_ptr<StorageService> storage_;
};

TEST_F(PartitionedRenameTest, CrossPartitionRenameMovesSubtreeExactlyOnce) {
  auto service = MakeService();
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/d")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/d/f1")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/d/sub/f2")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/dx")).ok());  // prefix sibling
  ASSERT_TRUE(
      service.GrantEntry("/d/f1", "bob", /*read=*/true, /*write=*/false)
          .ok());
  // The subtree's tuples really span more than one partition, so this
  // exercises the intent-record path, not a lucky co-location.
  std::set<unsigned> partitions;
  for (const char* path : {"/d", "/d/f1", "/d/sub/f2"}) {
    partitions.insert(coord_.PartitionOf(MetadataKey(path)));
  }
  EXPECT_GT(partitions.size(), 1u);

  ASSERT_TRUE(service.RenameSubtree("/d", "/e").ok());
  EXPECT_TRUE(service.Get("/e/f1").ok());
  EXPECT_TRUE(service.Get("/e/sub/f2").ok());
  EXPECT_FALSE(service.Get("/d/f1").ok());
  EXPECT_TRUE(service.Get("/dx").ok());
  // Tuple-level: the move bumped each version exactly once (1 -> 2, the
  // same contract as the single-partition rename trigger) and preserved
  // the ACL — bob's read grant survives the partition hop.
  auto moved = coord_.Read("alice", MetadataKey("/e/f1"));
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->version, 2u);
  EXPECT_TRUE(coord_.Read("bob", MetadataKey("/e/f1")).ok());
  EXPECT_EQ(coord_.Read("eve", MetadataKey("/e/f1")).status().code(),
            ErrorCode::kPermissionDenied);
  ExpectNoRenameRecords();
}

TEST_F(PartitionedRenameTest, MountReplaysIntentAfterClientCrash) {
  // A client that crashed right after the prepare record: nothing moved
  // yet. Mounting a fresh session must finish the rename from the record.
  {
    auto service = MakeService();
    ASSERT_TRUE(service.Mount().ok());
    ASSERT_TRUE(service.Put(SampleMetadata("/a")).ok());
    ASSERT_TRUE(service.Put(SampleMetadata("/a/f")).ok());
    ASSERT_TRUE(coord_
                    .ConditionalCreate("alice", RenameIntentKey("/a"),
                                       EncodeRenameIntent("/a", "/b"))
                    .ok());
  }
  auto service = MakeService();
  ASSERT_TRUE(service.Mount().ok());
  EXPECT_TRUE(service.Get("/b/f").ok());
  EXPECT_FALSE(service.Get("/a/f").ok());
  auto moved = coord_.Read("alice", MetadataKey("/b/f"));
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->version, 2u);
  ExpectNoRenameRecords();
}

TEST_F(PartitionedRenameTest, MountReplaysCrashMidImportWithoutDuplicates) {
  // Crash mid-import: the intent exists and one entry was already imported
  // at the destination. Replay re-imports everything — idempotently, so
  // the half-imported entry keeps its exactly-once version — and finishes.
  {
    auto service = MakeService();
    ASSERT_TRUE(service.Mount().ok());
    ASSERT_TRUE(service.Put(SampleMetadata("/c")).ok());
    ASSERT_TRUE(service.Put(SampleMetadata("/c/f1")).ok());
    ASSERT_TRUE(service.Put(SampleMetadata("/c/f2")).ok());
    ASSERT_TRUE(coord_
                    .ConditionalCreate("alice", RenameIntentKey("/c"),
                                       EncodeRenameIntent("/c", "/cd"))
                    .ok());
    auto exported = coord_.ExportPrefix("alice", MetadataKey("/c"));
    ASSERT_TRUE(exported.ok());
    ASSERT_FALSE(exported->empty());
    const auto& first = exported->front();
    std::string new_key =
        MetadataKey("/cd") + first.key.substr(MetadataKey("/c").size());
    ASSERT_TRUE(coord_.ImportEntry("alice", new_key, first.value).ok());
  }
  auto service = MakeService();
  ASSERT_TRUE(service.Mount().ok());
  for (const char* path : {"/cd", "/cd/f1", "/cd/f2"}) {
    auto entry = coord_.Read("alice", MetadataKey(path));
    ASSERT_TRUE(entry.ok()) << path;
    EXPECT_EQ(entry->version, 2u) << path;  // imported exactly once
  }
  auto leftovers = coord_.ReadPrefix("alice", MetadataKey("/c"));
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
  ExpectNoRenameRecords();
}

TEST_F(PartitionedRenameTest, MountReplaysCrashAfterCommitMidDeletes) {
  // Crash after the commit marker with one source key already deleted:
  // replay must only finish the deletes (the marker proves the imports
  // completed) and retire both records.
  {
    auto service = MakeService();
    ASSERT_TRUE(service.Mount().ok());
    ASSERT_TRUE(service.Put(SampleMetadata("/g")).ok());
    ASSERT_TRUE(service.Put(SampleMetadata("/g/f1")).ok());
    ASSERT_TRUE(service.Put(SampleMetadata("/g/f2")).ok());
    ASSERT_TRUE(coord_
                    .ConditionalCreate("alice", RenameIntentKey("/g"),
                                       EncodeRenameIntent("/g", "/h"))
                    .ok());
    auto exported = coord_.ExportPrefix("alice", MetadataKey("/g"));
    ASSERT_TRUE(exported.ok());
    ASSERT_EQ(exported->size(), 3u);
    for (const auto& entry : *exported) {
      std::string new_key =
          MetadataKey("/h") + entry.key.substr(MetadataKey("/g").size());
      ASSERT_TRUE(coord_.ImportEntry("alice", new_key, entry.value).ok());
    }
    ASSERT_TRUE(coord_
                    .ConditionalCreate("alice", RenameCommitKey("/h"),
                                       EncodeRenameIntent("/g", "/h"))
                    .ok());
    ASSERT_TRUE(coord_.Remove("alice", exported->front().key).ok());
  }
  auto service = MakeService();
  ASSERT_TRUE(service.Mount().ok());
  for (const char* path : {"/h", "/h/f1", "/h/f2"}) {
    auto entry = coord_.Read("alice", MetadataKey(path));
    ASSERT_TRUE(entry.ok()) << path;
    EXPECT_EQ(entry->version, 2u) << path;
  }
  auto leftovers = coord_.ReadPrefix("alice", MetadataKey("/g"));
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
  ExpectNoRenameRecords();
}

TEST_F(PartitionedRenameTest, ForeignCommitMarkerDoesNotSkipImports) {
  auto service = MakeService();
  ASSERT_TRUE(service.Mount().ok());
  // A crashed rename (/old -> /dst) that imported everything and wrote its
  // commit marker, but never ran its deletes or retired its records:
  ASSERT_TRUE(service.Put(SampleMetadata("/old")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/old/f")).ok());
  ASSERT_TRUE(coord_
                  .ConditionalCreate("alice", RenameIntentKey("/old"),
                                     EncodeRenameIntent("/old", "/dst"))
                  .ok());
  auto exported = coord_.ExportPrefix("alice", MetadataKey("/old"));
  ASSERT_TRUE(exported.ok());
  for (const auto& entry : *exported) {
    std::string new_key =
        MetadataKey("/dst") + entry.key.substr(MetadataKey("/old").size());
    ASSERT_TRUE(coord_.ImportEntry("alice", new_key, entry.value).ok());
  }
  ASSERT_TRUE(coord_
                  .ConditionalCreate("alice", RenameCommitKey("/dst"),
                                     EncodeRenameIntent("/old", "/dst"))
                  .ok());
  // A live rename of a DIFFERENT source into the same destination must not
  // mistake that marker for its own commit: /src's entries have to be
  // imported, not silently deleted as "already committed".
  ASSERT_TRUE(service.Put(SampleMetadata("/src")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/src/g")).ok());
  ASSERT_TRUE(service.RenameSubtree("/src", "/dst").ok());
  for (const char* path : {"/dst/f", "/dst/g"}) {
    auto entry = coord_.Read("alice", MetadataKey(path));
    ASSERT_TRUE(entry.ok()) << path;
    EXPECT_EQ(entry->version, 2u) << path;
  }
  // Both the crashed rename's sources and ours are retired, records gone.
  EXPECT_TRUE(coord_.ReadPrefix("alice", MetadataKey("/old"))->empty());
  EXPECT_TRUE(coord_.ReadPrefix("alice", MetadataKey("/src"))->empty());
  ExpectNoRenameRecords();
}

TEST_F(PartitionedRenameTest, MidImportPermissionFailureKeepsIntentForReplay) {
  auto service = MakeService();
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/ps")).ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/ps/x")).ok());
  // The destination key for /ps/x already exists and is owned by another
  // user: the import phase is refused after the move has begun.
  ASSERT_TRUE(
      coord_.Write("mallory", MetadataKey("/pd/x"), ToBytes("theirs")).ok());
  Status denied = service.RenameSubtree("/ps", "/pd");
  EXPECT_EQ(denied.code(), ErrorCode::kPermissionDenied);
  // The prepare record must survive a failure that may have moved part of
  // the subtree — it is the only replay handle.
  EXPECT_TRUE(coord_.Read("alice", RenameIntentKey("/ps")).ok());
  // Once the conflict is cleared, a remount replays and completes.
  ASSERT_TRUE(coord_.Remove("mallory", MetadataKey("/pd/x")).ok());
  auto fresh = MakeService();
  ASSERT_TRUE(fresh.Mount().ok());
  for (const char* path : {"/pd", "/pd/x"}) {
    EXPECT_TRUE(coord_.Read("alice", MetadataKey(path)).ok()) << path;
  }
  EXPECT_TRUE(coord_.ReadPrefix("alice", MetadataKey("/ps"))->empty());
  ExpectNoRenameRecords();
}

TEST_F(PartitionedRenameTest, RenameSurvivesPartitionLeaderCrashMidCommit) {
  auto service = MakeService();
  ASSERT_TRUE(service.Mount().ok());
  ASSERT_TRUE(service.Put(SampleMetadata("/dir")).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        service.Put(SampleMetadata("/dir/f" + std::to_string(i))).ok());
  }
  // Crash the destination partition's view-0 leader while the rename is in
  // flight: its in-flight imports/commit must survive the view change, and
  // the client's retransmissions must not double-apply any of them.
  const unsigned dst_partition = coord_.PartitionOf(RenameCommitKey("/moved"));
  Status rename_status;
  std::thread renamer(
      [&] { rename_status = service.RenameSubtree("/dir", "/moved"); });
  env_->Sleep(10 * kMillisecond);
  coord_.cluster(dst_partition).CrashReplica(0);
  renamer.join();
  ASSERT_TRUE(rename_status.ok()) << rename_status.ToString();
  EXPECT_GE(coord_.cluster(dst_partition).current_view(), 1u);
  for (int i = 0; i < 6; ++i) {
    auto entry =
        coord_.Read("alice", MetadataKey("/moved/f" + std::to_string(i)));
    ASSERT_TRUE(entry.ok()) << i;
    EXPECT_EQ(entry->version, 2u) << i;  // moved exactly once, not lost
  }
  auto leftovers = coord_.ReadPrefix("alice", MetadataKey("/dir"));
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
  ExpectNoRenameRecords();
}

}  // namespace
}  // namespace scfs
