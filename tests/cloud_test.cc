// Tests for the simulated cloud object stores: CRUD, eventual consistency
// windows, ACL enforcement, fault injection and cost metering.

#include <gtest/gtest.h>

#include "src/cloud/cost_meter.h"
#include "src/cloud/providers.h"
#include "src/cloud/simulated_cloud.h"
#include "src/common/bytes.h"

namespace scfs {
namespace {

CloudProfile FastProfile() {
  CloudProfile p;
  p.name = "test-cloud";
  p.prices = PriceBook::AmazonS3();
  return p;  // zero latency, zero consistency window
}

CloudCredentials Alice() { return {"alice"}; }
CloudCredentials Bob() { return {"bob"}; }

class SimulatedCloudTest : public ::testing::Test {
 protected:
  SimulatedCloudTest()
      : env_(Environment::Instant()),
        cloud_(FastProfile(), env_.get(), 1) {}

  std::unique_ptr<Environment> env_;
  SimulatedCloud cloud_;
};

TEST_F(SimulatedCloudTest, PutGetRoundTrip) {
  ASSERT_TRUE(cloud_.Put(Alice(), "k1", ToBytes("v1")).ok());
  auto got = cloud_.Get(Alice(), "k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "v1");
}

TEST_F(SimulatedCloudTest, GetMissingIsNotFound) {
  EXPECT_EQ(cloud_.Get(Alice(), "nope").status().code(), ErrorCode::kNotFound);
}

TEST_F(SimulatedCloudTest, DeleteRemoves) {
  ASSERT_TRUE(cloud_.Put(Alice(), "k1", ToBytes("v1")).ok());
  ASSERT_TRUE(cloud_.Delete(Alice(), "k1").ok());
  EXPECT_FALSE(cloud_.Get(Alice(), "k1").ok());
  EXPECT_EQ(cloud_.Delete(Alice(), "k1").code(), ErrorCode::kNotFound);
}

TEST_F(SimulatedCloudTest, ListByPrefix) {
  cloud_.Put(Alice(), "a/1", ToBytes("x"));
  cloud_.Put(Alice(), "a/2", ToBytes("xy"));
  cloud_.Put(Alice(), "b/1", ToBytes("z"));
  auto listed = cloud_.List(Alice(), "a/");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  EXPECT_EQ((*listed)[0].key, "a/1");
  EXPECT_EQ((*listed)[1].key, "a/2");
  EXPECT_EQ((*listed)[1].size, 2u);
}

TEST_F(SimulatedCloudTest, NewObjectsImmediatelyVisible) {
  // Read-after-write consistency for new keys (S3 semantics).
  CloudProfile p = FastProfile();
  p.consistency_window_base = 10 * kSecond;
  SimulatedCloud cloud(p, env_.get(), 2);
  ASSERT_TRUE(cloud.Put(Alice(), "new", ToBytes("v")).ok());
  EXPECT_TRUE(cloud.Get(Alice(), "new").ok());
}

TEST_F(SimulatedCloudTest, OverwritesAreEventuallyConsistent) {
  CloudProfile p = FastProfile();
  p.consistency_window_base = 10 * kSecond;
  SimulatedCloud cloud(p, env_.get(), 2);
  ASSERT_TRUE(cloud.Put(Alice(), "k", ToBytes("old")).ok());
  ASSERT_TRUE(cloud.Put(Alice(), "k", ToBytes("new")).ok());
  // Inside the window: stale read.
  auto stale = cloud.Get(Alice(), "k");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(ToString(*stale), "old");
  // After the window: fresh read.
  env_->Sleep(11 * kSecond);
  auto fresh = cloud.Get(Alice(), "k");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(ToString(*fresh), "new");
}

TEST_F(SimulatedCloudTest, AclOwnerFullAccess) {
  ASSERT_TRUE(cloud_.Put(Alice(), "mine", ToBytes("v")).ok());
  EXPECT_TRUE(cloud_.Get(Alice(), "mine").ok());
  EXPECT_TRUE(cloud_.Put(Alice(), "mine", ToBytes("v2")).ok());
}

TEST_F(SimulatedCloudTest, AclStrangerDenied) {
  ASSERT_TRUE(cloud_.Put(Alice(), "mine", ToBytes("v")).ok());
  EXPECT_EQ(cloud_.Get(Bob(), "mine").status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(cloud_.Put(Bob(), "mine", ToBytes("evil")).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(cloud_.Delete(Bob(), "mine").code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SimulatedCloudTest, AclGrantReadThenRevoke) {
  ASSERT_TRUE(cloud_.Put(Alice(), "shared", ToBytes("v")).ok());
  ASSERT_TRUE(
      cloud_.SetAcl(Alice(), "shared", "bob", ObjectPermissions::ReadOnly())
          .ok());
  EXPECT_TRUE(cloud_.Get(Bob(), "shared").ok());
  EXPECT_EQ(cloud_.Put(Bob(), "shared", ToBytes("w")).code(),
            ErrorCode::kPermissionDenied);
  // Revoke.
  ASSERT_TRUE(
      cloud_.SetAcl(Alice(), "shared", "bob", ObjectPermissions::None()).ok());
  EXPECT_FALSE(cloud_.Get(Bob(), "shared").ok());
}

TEST_F(SimulatedCloudTest, AclGrantWrite) {
  ASSERT_TRUE(cloud_.Put(Alice(), "shared", ToBytes("v")).ok());
  ASSERT_TRUE(
      cloud_.SetAcl(Alice(), "shared", "bob", ObjectPermissions::ReadWrite())
          .ok());
  EXPECT_TRUE(cloud_.Put(Bob(), "shared", ToBytes("w")).ok());
  // Ownership does not transfer: bob cannot change ACLs.
  EXPECT_EQ(
      cloud_.SetAcl(Bob(), "shared", "carol", ObjectPermissions::ReadOnly())
          .code(),
      ErrorCode::kPermissionDenied);
}

TEST_F(SimulatedCloudTest, ListHidesUnreadableObjects) {
  cloud_.Put(Alice(), "p/a", ToBytes("1"));
  cloud_.Put(Bob(), "p/b", ToBytes("2"));
  auto listed = cloud_.List(Bob(), "p/");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0].key, "p/b");
}

TEST_F(SimulatedCloudTest, OutageFailsOperations) {
  cloud_.Put(Alice(), "k", ToBytes("v"));
  cloud_.faults().SetUnavailable(true);
  EXPECT_EQ(cloud_.Get(Alice(), "k").status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(cloud_.Put(Alice(), "k2", ToBytes("v")).code(),
            ErrorCode::kUnavailable);
  cloud_.faults().SetUnavailable(false);
  EXPECT_TRUE(cloud_.Get(Alice(), "k").ok());
}

TEST_F(SimulatedCloudTest, CorruptionFlipsBytes) {
  Bytes data = ToBytes("some object payload");
  cloud_.Put(Alice(), "k", data);
  cloud_.faults().CorruptNextReads(1);
  auto corrupted = cloud_.Get(Alice(), "k");
  ASSERT_TRUE(corrupted.ok());
  EXPECT_NE(*corrupted, data);
  auto clean = cloud_.Get(Alice(), "k");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, data);
}

TEST_F(SimulatedCloudTest, ByzantineServesStaleVersion) {
  CloudProfile p = FastProfile();
  p.consistency_window_base = 10 * kSecond;
  SimulatedCloud cloud(p, env_.get(), 3);
  cloud.Put(Alice(), "k", ToBytes("v1"));
  cloud.Put(Alice(), "k", ToBytes("v2"));
  env_->Sleep(20 * kSecond);
  // An honest read now sees v2...
  auto honest = cloud.Get(Alice(), "k");
  ASSERT_TRUE(honest.ok());
  EXPECT_EQ(ToString(*honest), "v2");
  // ...but a byzantine provider may roll back to the oldest retained version.
  cloud.faults().SetByzantine(true);
  auto got = cloud.Get(Alice(), "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "v1");
}

TEST_F(SimulatedCloudTest, CostMeterCountsRequestsAndTraffic) {
  Bytes data(1024 * 1024, 7);  // 1 MB
  cloud_.Put(Alice(), "k", data);
  cloud_.Get(Alice(), "k");
  cloud_.List(Alice(), "");
  auto totals = cloud_.costs().Totals("alice");
  EXPECT_EQ(totals.puts, 1u);
  EXPECT_EQ(totals.gets, 1u);
  EXPECT_EQ(totals.lists, 1u);
  EXPECT_EQ(totals.bytes_in, data.size());
  EXPECT_EQ(totals.bytes_out, data.size());
  // Inbound free, outbound ~ 1/1024 GB * $0.12.
  EXPECT_DOUBLE_EQ(totals.inbound_cost, 0.0);
  EXPECT_NEAR(totals.outbound_cost, 0.12 / 1024.0, 1e-9);
}

TEST_F(SimulatedCloudTest, StorageFootprintTracksOwner) {
  Bytes data(1000, 1);
  cloud_.Put(Alice(), "k", data);
  EXPECT_EQ(cloud_.costs().StoredBytes("alice"), 1000u);
  cloud_.Put(Alice(), "k", Bytes(500, 2));
  env_->Sleep(kSecond);
  EXPECT_EQ(cloud_.costs().StoredBytes("alice"), 500u);
  cloud_.Delete(Alice(), "k");
  EXPECT_EQ(cloud_.costs().StoredBytes("alice"), 0u);
}

TEST_F(SimulatedCloudTest, StorageCostPerDayMatchesPriceBook) {
  Bytes data(1024 * 1024 * 30, 1);  // 30 MB
  cloud_.Put(Alice(), "k", data);
  double per_day = cloud_.costs().StorageCostPerDay("alice");
  // 30 MB * $0.09/GB-month / 30 days.
  double expected = 30.0 / 1024.0 * 0.09 / 30.0;
  EXPECT_NEAR(per_day, expected, expected * 0.01);
}

TEST(CloudLatencyTest, ScaledEnvironmentChargesLatency) {
  auto env = Environment::Scaled(1e-5);
  CloudProfile p = FastProfile();
  p.write_latency = LatencyModel::Fixed(200 * kMillisecond);
  SimulatedCloud cloud(p, env.get(), 4);
  VirtualTime t0 = env->Now();
  cloud.Put(Alice(), "k", ToBytes("v"));
  EXPECT_GE(env->Now() - t0, 200 * kMillisecond);
}

TEST(ProvidersTest, AllProfilesDistinctAndPriced) {
  auto profiles = CocStorageProfiles();
  ASSERT_EQ(profiles.size(), 4u);
  std::set<std::string> names;
  for (const auto& p : profiles) {
    names.insert(p.name);
    EXPECT_GT(p.read_latency.base, 0);
    EXPECT_GT(p.write_latency.base, 0);
    EXPECT_GT(p.read_latency.bytes_per_second, 0.0);
    EXPECT_GT(p.prices.outbound_per_gb, 0.0);
    EXPECT_DOUBLE_EQ(p.prices.inbound_per_gb, 0.0);  // free uploads
    EXPECT_GT(p.consistency_window_jitter, 0);
  }
  EXPECT_EQ(names.size(), 4u);
}

TEST(ProvidersTest, CoordinationVmPricing) {
  // Figure 11a: 1 EC2 Large = $6.24/day; CoC Large ~= $39.6/day.
  EXPECT_DOUBLE_EQ(CoordinationVmPricePerDay(0, false), 6.24);
  double coc = 0.0;
  double coc_xl = 0.0;
  for (unsigned i = 0; i < 4; ++i) {
    coc += CoordinationVmPricePerDay(i, false);
    coc_xl += CoordinationVmPricePerDay(i, true);
  }
  EXPECT_NEAR(coc, 39.60, 0.01);
  EXPECT_NEAR(coc_xl, 77.04, 0.01);
  EXPECT_EQ(CoordinationCapacityTuples(false), 7u * 1000 * 1000);
  EXPECT_EQ(CoordinationCapacityTuples(true), 15u * 1000 * 1000);
}

TEST(ProvidersTest, MakeCloudWorks) {
  auto env = Environment::Instant();
  auto cloud = MakeCloud(ProviderId::kAzureBlob, env.get(), 5);
  EXPECT_EQ(cloud->provider_name(), "azure-blob");
  EXPECT_TRUE(cloud->Put({"u"}, "k", ToBytes("v")).ok());
}

}  // namespace
}  // namespace scfs
