// Tests for declarative fault schedules and the chaos campaign runner:
// strict key=value parsing, builtin campaigns, window merging, deterministic
// corruption replay, latency-degradation injection and the runner's
// apply/clear edge walk (including overlapping windows and replica hooks).

#include <gtest/gtest.h>

#include <memory>

#include "src/chaos/campaign.h"
#include "src/cloud/simulated_cloud.h"
#include "src/sim/fault.h"
#include "src/sim/fault_schedule.h"

namespace scfs {
namespace {

TEST(FaultScheduleParseTest, ParsesEveryKind) {
  struct Case {
    const char* line;
    FaultKind kind;
  };
  for (const Case& c : {
           Case{"kind=outage cloud=0 at=4s for=6s", FaultKind::kOutage},
           Case{"kind=latency cloud=1 at=2s for=5s add=400ms",
                FaultKind::kLatency},
           Case{"kind=transient cloud=2 at=0s for=8s p=0.3",
                FaultKind::kTransient},
           Case{"kind=corrupt cloud=0 at=4s for=6s", FaultKind::kCorrupt},
           Case{"kind=byzantine cloud=3 at=4s for=6s", FaultKind::kByzantine},
           Case{"kind=replica_restart replica=2 at=5s for=3s",
                FaultKind::kReplicaRestart},
       }) {
    auto event = ParseFaultEvent(c.line);
    ASSERT_TRUE(event.ok()) << c.line << ": " << event.status().ToString();
    EXPECT_EQ(event->kind, c.kind) << c.line;
  }
}

TEST(FaultScheduleParseTest, FieldValues) {
  auto event = ParseFaultEvent("kind=latency cloud=1 at=2s for=500ms add=40ms");
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->target, 1u);
  EXPECT_EQ(event->at, 2 * kSecond);
  EXPECT_EQ(event->duration, 500 * kMillisecond);
  EXPECT_EQ(event->extra_latency, 40 * kMillisecond);
  EXPECT_EQ(event->end(), 2 * kSecond + 500 * kMillisecond);
}

TEST(FaultScheduleParseTest, RejectsMalformedLines) {
  const char* bad[] = {
      "cloud=0 at=4s for=6s",                       // no kind
      "kind=meteor cloud=0 at=4s for=6s",           // unknown kind
      "kind=outage at=4s for=6s",                   // no target
      "kind=outage replica=0 at=4s for=6s",         // replica= on a cloud kind
      "kind=replica_restart cloud=0 at=4s for=6s",  // cloud= on a replica kind
      "kind=outage cloud=0 for=6s",                 // no at
      "kind=outage cloud=0 at=4s",                  // no for
      "kind=outage cloud=0 at=4s for=0s",           // empty window
      "kind=outage cloud=0 at=4s for=6",            // missing unit suffix
      "kind=outage cloud=0 at=-1s for=6s",          // negative time
      "kind=outage cloud=0 at=4s for=6s p=0.5",     // p on a non-transient
      "kind=transient cloud=0 at=4s for=6s",        // transient without p
      "kind=transient cloud=0 at=4s for=6s p=1.5",  // p out of range
      "kind=outage cloud=0 at=4s for=6s add=1s",    // add on a non-latency
      "kind=latency cloud=0 at=4s for=6s",          // latency without add
      "kind=outage cloud=0 at=4s for=6s color=red",  // unknown key
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseFaultEvent(line).ok()) << line;
  }
}

TEST(FaultScheduleParseTest, ScheduleSkipsCommentsAndBlanks) {
  auto schedule = ParseFaultSchedule(
      "# campaign header\n"
      "\n"
      "kind=outage cloud=0 at=1s for=2s\n"
      "  # indented comment\n"
      "kind=latency cloud=1 at=2s for=2s add=10ms\n");
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->events.size(), 2u);
  EXPECT_EQ(schedule->horizon(), 4 * kSecond);
}

TEST(FaultScheduleParseTest, MergedWindowsMergesOverlaps) {
  auto schedule = ParseFaultSchedule(
      "kind=outage cloud=0 at=1s for=3s\n"
      "kind=latency cloud=1 at=2s for=4s add=10ms\n"
      "kind=corrupt cloud=2 at=8s for=1s\n");
  ASSERT_TRUE(schedule.ok());
  auto windows = schedule->MergedWindows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].first, 1 * kSecond);
  EXPECT_EQ(windows[0].second, 6 * kSecond);
  EXPECT_EQ(windows[1].first, 8 * kSecond);
  EXPECT_EQ(windows[1].second, 9 * kSecond);
}

TEST(FaultScheduleParseTest, BuiltinCampaignsParse) {
  for (const char* name : {"outage", "latency", "flaky", "corruption",
                           "byzantine", "replica", "mixed"}) {
    auto campaign = BuiltinCampaign(name);
    ASSERT_TRUE(campaign.ok()) << name;
    EXPECT_EQ(campaign->name, name);
    EXPECT_FALSE(campaign->empty()) << name;
    // The published text is the source of truth: it must parse to the same
    // events.
    auto text = BuiltinCampaignText(name);
    ASSERT_TRUE(text.ok()) << name;
    auto reparsed = ParseFaultSchedule(*text);
    ASSERT_TRUE(reparsed.ok()) << name;
    EXPECT_EQ(reparsed->events.size(), campaign->events.size()) << name;
  }
  EXPECT_FALSE(BuiltinCampaign("nosuch").ok());
}

TEST(FaultInjectorTest, CorruptionIsSeedDeterministic) {
  Bytes original(512);
  for (size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<uint8_t>(i);
  }
  Bytes a = original;
  Bytes b = original;
  FaultInjector first(77);
  FaultInjector second(77);
  first.CorruptPayload(ByteSpan(a));
  second.CorruptPayload(ByteSpan(b));
  EXPECT_EQ(a, b);           // same seed, same flips
  EXPECT_NE(a, original);    // guaranteed to differ from the original
}

TEST(FaultInjectorTest, LatencyDegradationDelaysCloudOps) {
  auto env = Environment::Instant();
  CloudProfile profile;  // zero modelled latency
  SimulatedCloud cloud(profile, env.get(), 3);
  CloudCredentials creds{"acct"};
  ASSERT_TRUE(cloud.Put(creds, "k", ToBytes("v")).ok());

  cloud.faults().SetLatencyDegradation(250 * kMillisecond);
  const VirtualTime before = env->Now();
  ASSERT_TRUE(cloud.Get(creds, "k").ok());
  EXPECT_GE(env->Now() - before, 250 * kMillisecond);

  // Degradation also charges failing operations: the client waited for the
  // (failed) answer.
  cloud.faults().SetUnavailable(true);
  const VirtualTime failing = env->Now();
  EXPECT_FALSE(cloud.Get(creds, "k").ok());
  EXPECT_GE(env->Now() - failing, 250 * kMillisecond);
  cloud.faults().SetUnavailable(false);
  cloud.faults().SetLatencyDegradation(0);
}

class ChaosRunnerTest : public ::testing::Test {
 protected:
  ChaosRunnerTest() : env_(Environment::Instant()) {
    for (unsigned i = 0; i < 4; ++i) {
      CloudProfile profile;
      profile.name = "cloud" + std::to_string(i);
      clouds_.push_back(
          std::make_unique<SimulatedCloud>(profile, env_.get(), 20 + i));
    }
  }

  ChaosTargets Targets() {
    ChaosTargets targets;
    for (auto& cloud : clouds_) {
      targets.clouds.push_back(cloud.get());
    }
    return targets;
  }

  std::unique_ptr<Environment> env_;
  std::vector<std::unique_ptr<SimulatedCloud>> clouds_;
};

TEST_F(ChaosRunnerTest, AppliesAndClearsEveryFaultClass) {
  auto schedule = ParseFaultSchedule(
      "kind=outage cloud=0 at=10ms for=20ms\n"
      "kind=latency cloud=1 at=10ms for=20ms add=5ms\n"
      "kind=transient cloud=2 at=10ms for=20ms p=0.5\n"
      "kind=corrupt cloud=3 at=10ms for=20ms\n"
      "kind=byzantine cloud=3 at=15ms for=10ms\n");
  ASSERT_TRUE(schedule.ok());
  ChaosRunner runner(env_.get(), *schedule, Targets());
  ASSERT_TRUE(runner.Start().ok());
  runner.Join();
  // Every window has closed: all injectors are back to clean state.
  for (auto& cloud : clouds_) {
    EXPECT_FALSE(cloud->faults().unavailable());
    EXPECT_FALSE(cloud->faults().byzantine());
    EXPECT_EQ(cloud->faults().latency_degradation(), 0);
    EXPECT_FALSE(cloud->faults().ShouldFailOperation());
    EXPECT_FALSE(cloud->faults().ShouldCorruptRead());
  }
  // Two edges (apply + clear) per event.
  EXPECT_EQ(runner.log().size(), 2 * schedule->events.size());
  EXPECT_GE(env_->Now(), runner.origin() + schedule->horizon());
}

TEST_F(ChaosRunnerTest, OverlappingWindowsComposeInsteadOfClobbering) {
  // Two latency windows on the same cloud overlap; when the short one ends,
  // the long one must still assert its degradation (and the max of both must
  // hold while overlapped — verified indirectly: the final state is clean,
  // and the runner logged all four edges).
  auto schedule = ParseFaultSchedule(
      "kind=latency cloud=0 at=0ms for=40ms add=30ms\n"
      "kind=latency cloud=0 at=10ms for=10ms add=80ms\n");
  ASSERT_TRUE(schedule.ok());
  ChaosRunner runner(env_.get(), *schedule, Targets());
  ASSERT_TRUE(runner.Start().ok());
  runner.Join();
  EXPECT_EQ(clouds_[0]->faults().latency_degradation(), 0);
  EXPECT_EQ(runner.log().size(), 4u);
}

TEST_F(ChaosRunnerTest, ReplicaHookSeesCrashThenRestart) {
  auto schedule = ParseFaultSchedule("kind=replica_restart replica=2 at=5ms for=10ms\n");
  ASSERT_TRUE(schedule.ok());
  ChaosTargets targets = Targets();
  std::vector<std::pair<unsigned, bool>> calls;
  targets.replica_hook = [&calls](unsigned replica, bool up) {
    calls.emplace_back(replica, up);
  };
  ChaosRunner runner(env_.get(), *schedule, std::move(targets));
  ASSERT_TRUE(runner.Start().ok());
  runner.Join();
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], std::make_pair(2u, false));  // crash at window start
  EXPECT_EQ(calls[1], std::make_pair(2u, true));   // restart at window end
}

TEST_F(ChaosRunnerTest, StartValidatesTargets) {
  // Cloud index out of range.
  auto schedule = ParseFaultSchedule("kind=outage cloud=9 at=1ms for=1ms\n");
  ASSERT_TRUE(schedule.ok());
  ChaosRunner bad_cloud(env_.get(), *schedule, Targets());
  EXPECT_FALSE(bad_cloud.Start().ok());

  // Replica event without a replica hook.
  auto replica = ParseFaultSchedule("kind=replica_restart replica=0 at=1ms for=1ms\n");
  ASSERT_TRUE(replica.ok());
  ChaosRunner no_hook(env_.get(), *replica, Targets());
  EXPECT_FALSE(no_hook.Start().ok());
}

TEST_F(ChaosRunnerTest, FaultWindowsAreAbsolute) {
  auto schedule = ParseFaultSchedule("kind=outage cloud=0 at=5ms for=10ms\n");
  ASSERT_TRUE(schedule.ok());
  env_->Sleep(kSecond);  // the campaign starts late on the virtual clock
  ChaosRunner runner(env_.get(), *schedule, Targets());
  ASSERT_TRUE(runner.Start().ok());
  auto windows = runner.FaultWindows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].first, runner.origin() + 5 * kMillisecond);
  EXPECT_EQ(windows[0].second, runner.origin() + 15 * kMillisecond);
  runner.Join();
}

}  // namespace
}  // namespace scfs
