// Known-answer and property tests for the crypto substrate: SHA-1, SHA-256
// (FIPS 180-4 vectors), HMAC-SHA256 (RFC 4231), ChaCha20 (RFC 8439) and
// Shamir secret sharing.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/hmac.h"
#include "src/crypto/secret_sharing.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace scfs {
namespace {

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(HexEncode(Sha1::Hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(HexEncode(Sha1::Hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(
      HexEncode(Sha1::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  auto digest = h.Finish();
  EXPECT_EQ(HexEncode(digest.data(), digest.size()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Rng rng(11);
  Bytes data = rng.RandomBytes(10000);
  Sha1 h;
  size_t off = 0;
  size_t step = 1;
  while (off < data.size()) {
    size_t n = std::min(step, data.size() - off);
    h.Update(data.data() + off, n);
    off += n;
    step = step * 3 + 1;
  }
  auto incremental = h.Finish();
  EXPECT_EQ(Bytes(incremental.begin(), incremental.end()), Sha1::Hash(data));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexEncode(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexEncode(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      HexEncode(Sha256::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  auto digest = h.Finish();
  EXPECT_EQ(HexEncode(digest.data(), digest.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, DifferentInputsDifferentDigests) {
  EXPECT_NE(Sha256::Hash("a"), Sha256::Hash("b"));
}

TEST(HmacTest, Rfc4231TestCase1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(
      HexEncode(HmacSha256(key, ToBytes("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231TestCase2) {
  EXPECT_EQ(
      HexEncode(HmacSha256(ToBytes("Jefe"),
                           ToBytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key of 0xaa.
  Bytes key(131, 0xaa);
  EXPECT_EQ(
      HexEncode(HmacSha256(
          key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, VerifyAcceptsAndRejects) {
  Bytes key = ToBytes("secret");
  Bytes msg = ToBytes("message");
  Bytes mac = HmacSha256(key, msg);
  EXPECT_TRUE(HmacSha256Verify(key, msg, mac));
  Bytes bad_mac = mac;
  bad_mac[0] ^= 1;
  EXPECT_FALSE(HmacSha256Verify(key, msg, bad_mac));
  EXPECT_FALSE(HmacSha256Verify(ToBytes("wrong"), msg, mac));
}

TEST(ChaCha20Test, Rfc8439Encryption) {
  Bytes key(32);
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  Bytes nonce = HexDecode("000000000000004a00000000");
  Bytes plaintext = ToBytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  Bytes ciphertext = ChaCha20::Crypt(key, nonce, 1, plaintext);
  // First 32 bytes of the RFC 8439 section 2.4.2 ciphertext.
  EXPECT_EQ(HexEncode(Bytes(ciphertext.begin(), ciphertext.begin() + 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  // Decryption restores the plaintext.
  EXPECT_EQ(ChaCha20::Crypt(key, nonce, 1, ciphertext), plaintext);
}

TEST(ChaCha20Test, Rfc8439BlockFunction) {
  Bytes key(32);
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  Bytes nonce = HexDecode("000000090000004a00000000");
  auto block = ChaCha20::Block(key, nonce, 1);
  EXPECT_EQ(HexEncode(block.data(), 16), "10f1e7e4d13b5915500fdd1fa32071c4");
}

TEST(ChaCha20Test, RoundTripArbitrarySizes) {
  Rng rng(3);
  Bytes key = rng.RandomBytes(32);
  Bytes nonce = rng.RandomBytes(12);
  for (size_t size : {0u, 1u, 63u, 64u, 65u, 1000u, 4096u}) {
    Bytes plaintext = rng.RandomBytes(size);
    Bytes ciphertext = ChaCha20::Crypt(key, nonce, 0, plaintext);
    EXPECT_EQ(ChaCha20::Crypt(key, nonce, 0, ciphertext), plaintext);
    if (size > 8) {
      EXPECT_NE(ciphertext, plaintext);
    }
  }
}

TEST(ChaCha20Test, DifferentKeysDifferentStreams) {
  Rng rng(4);
  Bytes nonce = rng.RandomBytes(12);
  Bytes plaintext(128, 0);
  Bytes c1 = ChaCha20::Crypt(rng.RandomBytes(32), nonce, 0, plaintext);
  Bytes c2 = ChaCha20::Crypt(rng.RandomBytes(32), nonce, 0, plaintext);
  EXPECT_NE(c1, c2);
}

// The multi-block bulk kernels (4-block portable, 8-block AVX2) must produce
// the identical stream to the single-block Block() reference at every size
// around their group boundaries, and at non-zero initial counters.
TEST(ChaCha20Test, MultiBlockMatchesBlockReference) {
  Rng rng(5);
  Bytes key = rng.RandomBytes(32);
  Bytes nonce = rng.RandomBytes(12);
  for (uint32_t counter : {0u, 1u, 12345u}) {
    for (size_t size : {255u, 256u, 257u, 511u, 512u, 513u, 520u, 1023u,
                        2048u, 4096u + 37u}) {
      Bytes plaintext = rng.RandomBytes(size);
      Bytes got = ChaCha20::Crypt(key, nonce, counter, plaintext);
      Bytes want = plaintext;
      for (size_t off = 0; off < size; off += 64) {
        auto block = ChaCha20::Block(
            key, nonce, counter + static_cast<uint32_t>(off / 64));
        const size_t n = std::min<size_t>(64, size - off);
        for (size_t i = 0; i < n; ++i) {
          want[off + i] ^= block[i];
        }
      }
      ASSERT_EQ(got, want) << "size=" << size << " counter=" << counter;
    }
  }
}

// Encrypting in chunks with counter offsets (how striped units address the
// file-wide keystream) equals encrypting the whole buffer in one call.
TEST(ChaCha20Test, ChunkedCounterOffsetsMatchWholeStream) {
  Rng rng(6);
  Bytes key = rng.RandomBytes(32);
  Bytes nonce = rng.RandomBytes(12);
  const size_t kChunk = 1024;  // 16 blocks; a multiple of 64
  Bytes plaintext = rng.RandomBytes(kChunk * 3 + 100);
  Bytes whole = ChaCha20::Crypt(key, nonce, 7, plaintext);
  Bytes chunked = plaintext;
  for (size_t off = 0; off < chunked.size(); off += kChunk) {
    const size_t n = std::min(kChunk, chunked.size() - off);
    ChaCha20::CryptInPlace(key, nonce,
                           7 + static_cast<uint32_t>(off / 64),
                           ByteSpan(chunked.data() + off, n));
  }
  EXPECT_EQ(chunked, whole);
}

struct ShamirParam {
  unsigned shares;
  unsigned threshold;
};

class SecretSharingParamTest : public ::testing::TestWithParam<ShamirParam> {};

TEST_P(SecretSharingParamTest, SplitCombineRoundTrip) {
  Rng rng(42);
  const auto param = GetParam();
  Bytes secret = rng.RandomBytes(32);
  auto shares = SecretSharing::Split(secret, param.shares, param.threshold, rng);
  ASSERT_TRUE(shares.ok());
  ASSERT_EQ(shares->size(), param.shares);

  // Exactly threshold shares suffice (take the last `threshold`).
  std::vector<SecretShare> subset(shares->end() - param.threshold,
                                  shares->end());
  auto recovered = SecretSharing::Combine(subset, param.threshold);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, secret);
}

TEST_P(SecretSharingParamTest, RecoverShareIsByteIdentical) {
  Rng rng(42);
  const auto param = GetParam();
  Bytes secret = rng.RandomBytes(32);
  auto shares = SecretSharing::Split(secret, param.shares, param.threshold,
                                     rng);
  ASSERT_TRUE(shares.ok());
  // Any `threshold` shares re-derive every original share exactly — this is
  // what lets scrub repair rebuild a lost cloud's object byte-identically.
  std::vector<SecretShare> subset(shares->begin(),
                                  shares->begin() + param.threshold);
  for (unsigned target = 0; target < param.shares; ++target) {
    auto recovered = SecretSharing::RecoverShare(subset, param.threshold,
                                                 (*shares)[target].index);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered->index, (*shares)[target].index);
    EXPECT_EQ(recovered->data, (*shares)[target].data);
  }
  // A recovered share composes with survivors to rebuild the secret.
  std::vector<SecretShare> mixed(shares->begin() + 1,
                                 shares->begin() + param.threshold);
  auto share0 = SecretSharing::RecoverShare(subset, param.threshold,
                                            (*shares)[0].index);
  ASSERT_TRUE(share0.ok());
  mixed.push_back(*share0);
  auto combined = SecretSharing::Combine(mixed, param.threshold);
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(*combined, secret);
}

TEST(SecretSharingTest, RecoverShareRejectsBadInput) {
  Rng rng(1);
  auto shares = SecretSharing::Split(rng.RandomBytes(16), 4, 2, rng);
  ASSERT_TRUE(shares.ok());
  std::vector<SecretShare> subset(shares->begin(), shares->begin() + 2);
  EXPECT_FALSE(SecretSharing::RecoverShare(subset, 2, 0).ok());
  std::vector<SecretShare> too_few(shares->begin(), shares->begin() + 1);
  EXPECT_FALSE(SecretSharing::RecoverShare(too_few, 2, 3).ok());
}

TEST_P(SecretSharingParamTest, BelowThresholdFails) {
  Rng rng(42);
  const auto param = GetParam();
  if (param.threshold < 2) {
    GTEST_SKIP() << "threshold 1 has no below-threshold case";
  }
  Bytes secret = rng.RandomBytes(16);
  auto shares = SecretSharing::Split(secret, param.shares, param.threshold, rng);
  ASSERT_TRUE(shares.ok());
  std::vector<SecretShare> subset(shares->begin(),
                                  shares->begin() + param.threshold - 1);
  EXPECT_FALSE(SecretSharing::Combine(subset, param.threshold).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, SecretSharingParamTest,
    ::testing::Values(ShamirParam{4, 2}, ShamirParam{4, 3}, ShamirParam{7, 3},
                      ShamirParam{10, 5}, ShamirParam{3, 1}, ShamirParam{5, 5}),
    [](const ::testing::TestParamInfo<ShamirParam>& info) {
      return "n" + std::to_string(info.param.shares) + "t" +
             std::to_string(info.param.threshold);
    });

TEST(SecretSharingTest, SingleShareRevealsNothing) {
  // With threshold 2, one share must be statistically unrelated to the
  // secret: check that the share differs from the secret (overwhelming
  // probability) and that two splits of the same secret give different shares.
  Rng rng(5);
  Bytes secret = rng.RandomBytes(32);
  auto shares1 = SecretSharing::Split(secret, 4, 2, rng);
  auto shares2 = SecretSharing::Split(secret, 4, 2, rng);
  ASSERT_TRUE(shares1.ok());
  ASSERT_TRUE(shares2.ok());
  EXPECT_NE((*shares1)[0].data, secret);
  EXPECT_NE((*shares1)[0].data, (*shares2)[0].data);
}

TEST(SecretSharingTest, DuplicateSharesRejected) {
  Rng rng(6);
  Bytes secret = rng.RandomBytes(8);
  auto shares = SecretSharing::Split(secret, 4, 2, rng);
  ASSERT_TRUE(shares.ok());
  std::vector<SecretShare> dup = {(*shares)[0], (*shares)[0]};
  EXPECT_FALSE(SecretSharing::Combine(dup, 2).ok());
}

TEST(SecretSharingTest, InvalidParameters) {
  Rng rng(7);
  Bytes secret = rng.RandomBytes(8);
  EXPECT_FALSE(SecretSharing::Split(secret, 2, 3, rng).ok());  // t > n
  EXPECT_FALSE(SecretSharing::Split(secret, 4, 0, rng).ok());  // t == 0
}

TEST(SecretSharingTest, AnySubsetOfThresholdWorks) {
  Rng rng(8);
  Bytes secret = rng.RandomBytes(16);
  auto shares = SecretSharing::Split(secret, 4, 2, rng);
  ASSERT_TRUE(shares.ok());
  for (unsigned i = 0; i < 4; ++i) {
    for (unsigned j = i + 1; j < 4; ++j) {
      std::vector<SecretShare> subset = {(*shares)[i], (*shares)[j]};
      auto recovered = SecretSharing::Combine(subset, 2);
      ASSERT_TRUE(recovered.ok());
      EXPECT_EQ(*recovered, secret) << "shares " << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace scfs
