// SCFS agent tests: POSIX semantics, consistency-on-close between agents,
// locking, ACL-based sharing, private name spaces, modes of operation,
// garbage collection and cloud-fault tolerance — run over both backends where
// it matters.

#include <gtest/gtest.h>

#include "src/scfs/consistency_anchor.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

class ScfsTest : public ::testing::TestWithParam<ScfsBackendKind> {
 protected:
  ScfsTest() : env_(Environment::Instant()) {
    DeploymentOptions options;
    options.backend = GetParam();
    options.zero_latency = true;
    deployment_ = Deployment::Create(env_.get(), options);
  }

  std::unique_ptr<ScfsFileSystem> MountAgent(
      const std::string& user, ScfsMode mode = ScfsMode::kBlocking,
      bool use_pns = false) {
    ScfsOptions options;
    options.mode = mode;
    options.use_pns = use_pns;
    auto fs = deployment_->Mount(user, options);
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    return std::move(*fs);
  }

  std::unique_ptr<Environment> env_;
  std::unique_ptr<Deployment> deployment_;
};

TEST_P(ScfsTest, WriteReadRoundTrip) {
  auto fs = MountAgent("alice");
  Bytes data = ToBytes("hello scfs");
  ASSERT_TRUE(fs->WriteFile("/f.txt", data).ok());
  auto read = fs->ReadFile("/f.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_P(ScfsTest, OpenMissingFileFails) {
  auto fs = MountAgent("alice");
  EXPECT_EQ(fs->Open("/nope", kOpenRead).status().code(),
            ErrorCode::kNotFound);
}

TEST_P(ScfsTest, CreateRequiresParentDirectory) {
  auto fs = MountAgent("alice");
  EXPECT_EQ(fs->Open("/no/such/dir/f", kOpenWrite | kOpenCreate)
                .status()
                .code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(fs->Mkdir("/dir").ok());
  ASSERT_TRUE(fs->WriteFile("/dir/f", ToBytes("x")).ok());
}

TEST_P(ScfsTest, PartialReadsAndOffsets) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->WriteFile("/f", ToBytes("0123456789")).ok());
  auto fh = fs->Open("/f", kOpenRead);
  ASSERT_TRUE(fh.ok());
  EXPECT_EQ(ToString(*fs->Read(*fh, 2, 3)), "234");
  EXPECT_EQ(ToString(*fs->Read(*fh, 8, 100)), "89");  // clamped
  EXPECT_TRUE(fs->Read(*fh, 20, 5)->empty());         // past EOF
  ASSERT_TRUE(fs->Close(*fh).ok());
}

TEST_P(ScfsTest, WriteAtOffsetExtends) {
  auto fs = MountAgent("alice");
  auto fh = fs->Open("/f", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(fs->Write(*fh, 0, ToBytes("abc")).ok());
  ASSERT_TRUE(fs->Write(*fh, 5, ToBytes("xyz")).ok());
  ASSERT_TRUE(fs->Close(*fh).ok());
  auto read = fs->ReadFile("/f");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 8u);
  EXPECT_EQ((*read)[3], 0);  // hole filled with zeros
  EXPECT_EQ(ToString(Bytes(read->begin() + 5, read->end())), "xyz");
}

TEST_P(ScfsTest, TruncateOnOpenAndExplicit) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->WriteFile("/f", ToBytes("longcontent")).ok());
  // O_TRUNC drops the old content without fetching it.
  auto fh = fs->Open("/f", kOpenWrite | kOpenTruncate);
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(fs->Write(*fh, 0, ToBytes("hi")).ok());
  ASSERT_TRUE(fs->Close(*fh).ok());
  EXPECT_EQ(ToString(*fs->ReadFile("/f")), "hi");
  // Explicit truncate.
  fh = fs->Open("/f", kOpenWrite);
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(fs->Truncate(*fh, 1).ok());
  ASSERT_TRUE(fs->Close(*fh).ok());
  EXPECT_EQ(ToString(*fs->ReadFile("/f")), "h");
}

TEST_P(ScfsTest, StatReportsSizeAndType) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->WriteFile("/d/f", ToBytes("12345")).ok());
  auto file_stat = fs->Stat("/d/f");
  ASSERT_TRUE(file_stat.ok());
  EXPECT_EQ(file_stat->type, FileType::kFile);
  EXPECT_EQ(file_stat->size, 5u);
  EXPECT_EQ(file_stat->owner, "alice");
  auto dir_stat = fs->Stat("/d");
  ASSERT_TRUE(dir_stat.ok());
  EXPECT_EQ(dir_stat->type, FileType::kDirectory);
  auto root_stat = fs->Stat("/");
  ASSERT_TRUE(root_stat.ok());
  EXPECT_EQ(root_stat->type, FileType::kDirectory);
}

TEST_P(ScfsTest, ReadDirListsChildrenOnly) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->Mkdir("/d/sub").ok());
  ASSERT_TRUE(fs->WriteFile("/d/a", ToBytes("1")).ok());
  ASSERT_TRUE(fs->WriteFile("/d/sub/deep", ToBytes("2")).ok());
  auto entries = fs->ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "a");
  EXPECT_EQ((*entries)[1].name, "sub");
  EXPECT_EQ((*entries)[1].type, FileType::kDirectory);
}

TEST_P(ScfsTest, MkdirErrors) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  EXPECT_EQ(fs->Mkdir("/d").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fs->Mkdir("/missing/d").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs->WriteFile("/f", ToBytes("x")).ok());
  EXPECT_EQ(fs->Mkdir("/f/d").code(), ErrorCode::kNotDirectory);
}

TEST_P(ScfsTest, RmdirOnlyWhenEmpty) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->WriteFile("/d/f", ToBytes("x")).ok());
  EXPECT_EQ(fs->Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(fs->Unlink("/d/f").ok());
  ASSERT_TRUE(fs->Rmdir("/d").ok());
  EXPECT_EQ(fs->Stat("/d").status().code(), ErrorCode::kNotFound);
}

TEST_P(ScfsTest, UnlinkRemovesFromNamespace) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->WriteFile("/f", ToBytes("x")).ok());
  ASSERT_TRUE(fs->Unlink("/f").ok());
  EXPECT_EQ(fs->Stat("/f").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs->Unlink("/f").code(), ErrorCode::kNotFound);
  // The path can be reused.
  ASSERT_TRUE(fs->WriteFile("/f", ToBytes("y")).ok());
  EXPECT_EQ(ToString(*fs->ReadFile("/f")), "y");
}

TEST_P(ScfsTest, RenameFileAndDirectory) {
  auto fs = MountAgent("alice");
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->WriteFile("/d/f", ToBytes("content")).ok());
  // File rename.
  ASSERT_TRUE(fs->Rename("/d/f", "/d/g").ok());
  EXPECT_EQ(fs->Stat("/d/f").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(ToString(*fs->ReadFile("/d/g")), "content");
  // Directory rename moves the subtree.
  ASSERT_TRUE(fs->Rename("/d", "/e").ok());
  EXPECT_EQ(ToString(*fs->ReadFile("/e/g")), "content");
  EXPECT_EQ(fs->Stat("/d").status().code(), ErrorCode::kNotFound);
  // Rename into own subtree is rejected.
  ASSERT_TRUE(fs->Mkdir("/e/sub").ok());
  EXPECT_EQ(fs->Rename("/e", "/e/sub/x").code(), ErrorCode::kInvalidArgument);
}

TEST_P(ScfsTest, ConsistencyOnCloseAcrossAgents) {
  auto alice = MountAgent("alice");
  auto bob_view = MountAgent("alice");  // second machine, same user
  Bytes v1 = ToBytes("version 1");
  ASSERT_TRUE(alice->WriteFile("/shared", v1).ok());
  // After alice's close, the other agent sees the update on open.
  auto read = bob_view->ReadFile("/shared");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, v1);
  // And a subsequent update too (cache must revalidate by hash).
  env_->Sleep(kSecond);  // let the 500 ms metadata cache expire
  Bytes v2 = ToBytes("version 2 -- longer");
  ASSERT_TRUE(alice->WriteFile("/shared", v2).ok());
  env_->Sleep(kSecond);
  read = bob_view->ReadFile("/shared");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, v2);
}

TEST_P(ScfsTest, WriteWriteConflictGetsBusy) {
  auto a = MountAgent("alice");
  auto b = MountAgent("alice");
  ASSERT_TRUE(a->WriteFile("/f", ToBytes("x")).ok());
  env_->Sleep(kSecond);
  auto fh_a = a->Open("/f", kOpenWrite);
  ASSERT_TRUE(fh_a.ok());
  EXPECT_EQ(b->Open("/f", kOpenWrite).status().code(), ErrorCode::kBusy);
  // Reading is always allowed.
  auto fh_b = b->Open("/f", kOpenRead);
  EXPECT_TRUE(fh_b.ok());
  ASSERT_TRUE(b->Close(*fh_b).ok());
  // After close, the other client can lock.
  ASSERT_TRUE(a->Close(*fh_a).ok());
  auto fh_b2 = b->Open("/f", kOpenWrite);
  EXPECT_TRUE(fh_b2.ok());
  ASSERT_TRUE(b->Close(*fh_b2).ok());
}

TEST_P(ScfsTest, CrashedClientLockExpires) {
  auto a = MountAgent("alice");
  auto b = MountAgent("alice");
  ASSERT_TRUE(a->WriteFile("/f", ToBytes("x")).ok());
  env_->Sleep(kSecond);
  auto fh_a = a->Open("/f", kOpenWrite);
  ASSERT_TRUE(fh_a.ok());
  EXPECT_EQ(b->Open("/f", kOpenWrite).status().code(), ErrorCode::kBusy);
  // "a" crashes (never closes). The ephemeral lock lease runs out.
  env_->Sleep(200 * kSecond);
  auto fh_b = b->Open("/f", kOpenWrite);
  EXPECT_TRUE(fh_b.ok());
  ASSERT_TRUE(b->Close(*fh_b).ok());
}

TEST_P(ScfsTest, SharingWithAclBetweenUsers) {
  auto alice = MountAgent("alice");
  auto bob = MountAgent("bob");
  Bytes data = ToBytes("alice's document");
  ASSERT_TRUE(alice->WriteFile("/doc", data).ok());
  env_->Sleep(kSecond);

  // Before the grant bob cannot read (metadata ACL + cloud ACL).
  EXPECT_FALSE(bob->ReadFile("/doc").ok());

  ASSERT_TRUE(alice->SetFacl("/doc", "bob", true, false).ok());
  env_->Sleep(kSecond);
  auto read = bob->ReadFile("/doc");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);

  // Read-only: bob cannot open for writing.
  EXPECT_EQ(bob->Open("/doc", kOpenWrite).status().code(),
            ErrorCode::kPermissionDenied);

  // Upgrade to read-write; bob updates; alice reads bob's version.
  ASSERT_TRUE(alice->SetFacl("/doc", "bob", true, true).ok());
  env_->Sleep(kSecond);
  Bytes update = ToBytes("bob was here");
  ASSERT_TRUE(bob->WriteFile("/doc", update).ok());
  env_->Sleep(kSecond);
  auto alice_read = alice->ReadFile("/doc");
  ASSERT_TRUE(alice_read.ok()) << alice_read.status().ToString();
  EXPECT_EQ(*alice_read, update);

  // GetFacl reflects the grants.
  auto acl = alice->GetFacl("/doc");
  ASSERT_TRUE(acl.ok());
  ASSERT_EQ(acl->size(), 1u);
  EXPECT_EQ((*acl)[0].user, "bob");
  EXPECT_TRUE((*acl)[0].write);

  // Revoke: bob loses access.
  ASSERT_TRUE(alice->SetFacl("/doc", "bob", false, false).ok());
  env_->Sleep(kSecond);
  EXPECT_FALSE(bob->ReadFile("/doc").ok());
}

TEST_P(ScfsTest, OnlyOwnerChangesAcl) {
  auto alice = MountAgent("alice");
  auto bob = MountAgent("bob");
  ASSERT_TRUE(alice->WriteFile("/doc", ToBytes("x")).ok());
  ASSERT_TRUE(alice->SetFacl("/doc", "bob", true, false).ok());
  env_->Sleep(kSecond);
  EXPECT_EQ(bob->SetFacl("/doc", "bob", true, true).code(),
            ErrorCode::kPermissionDenied);
}

TEST_P(ScfsTest, NonBlockingModeEventuallyPublishes) {
  auto writer = MountAgent("alice", ScfsMode::kNonBlocking);
  auto reader = MountAgent("alice");
  Bytes data = ToBytes("async data");
  ASSERT_TRUE(writer->WriteFile("/f", data).ok());
  writer->DrainBackground();
  env_->Sleep(kSecond);
  auto read = reader->ReadFile("/f");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

TEST_P(ScfsTest, NonBlockingHoldsLockUntilUploadDone) {
  // Mutual exclusion is preserved: metadata is updated and the lock released
  // only after the background upload completes (§3.1).
  auto writer = MountAgent("alice", ScfsMode::kNonBlocking);
  ASSERT_TRUE(writer->WriteFile("/f", ToBytes("queued")).ok());
  // Until drained, the lock may still be held; after drain it must be free.
  writer->DrainBackground();
  auto reader = MountAgent("alice");
  auto fh = reader->Open("/f", kOpenWrite);
  EXPECT_TRUE(fh.ok());
  ASSERT_TRUE(reader->Close(*fh).ok());
}

TEST_P(ScfsTest, NonBlockingLocalReadAfterClose) {
  // The writer itself sees its own update immediately (local caches).
  auto fs = MountAgent("alice", ScfsMode::kNonBlocking);
  Bytes data = ToBytes("read my own writes");
  ASSERT_TRUE(fs->WriteFile("/f", data).ok());
  auto read = fs->ReadFile("/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  fs->DrainBackground();
}

TEST_P(ScfsTest, NonSharingModeWorksWithoutCoordination) {
  auto fs = MountAgent("alice", ScfsMode::kNonSharing);
  ASSERT_TRUE(fs->Mkdir("/docs").ok());
  Bytes data = ToBytes("private data");
  ASSERT_TRUE(fs->WriteFile("/docs/f", data).ok());
  EXPECT_EQ(*fs->ReadFile("/docs/f"), data);
  // Sharing operations are rejected.
  EXPECT_EQ(fs->SetFacl("/docs/f", "bob", true, false).code(),
            ErrorCode::kNotSupported);
  fs->DrainBackground();
  // A remount recovers the namespace from the cloud-stored PNS.
  ASSERT_TRUE(fs->Unmount().ok());
  auto remounted = MountAgent("alice", ScfsMode::kNonSharing);
  auto read = remounted->ReadFile("/docs/f");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

TEST_P(ScfsTest, PnsKeepsPrivateFilesOutOfCoordination) {
  auto bob = MountAgent("bob");  // registers bob's cloud ids
  auto fs = MountAgent("alice", ScfsMode::kBlocking, /*use_pns=*/true);
  ASSERT_TRUE(fs->WriteFile("/private", ToBytes("p")).ok());
  // No metadata tuple for the private file.
  auto entry =
      deployment_->coord()->Read("alice", MetadataKey("/private"));
  EXPECT_EQ(entry.status().code(), ErrorCode::kNotFound);

  // Sharing promotes it into the coordination service.
  ASSERT_TRUE(fs->SetFacl("/private", "bob", true, false).ok());
  entry = deployment_->coord()->Read("alice", MetadataKey("/private"));
  EXPECT_TRUE(entry.ok());

  // Revoking all grants demotes it back.
  ASSERT_TRUE(fs->SetFacl("/private", "bob", false, false).ok());
  entry = deployment_->coord()->Read("alice", MetadataKey("/private"));
  EXPECT_EQ(entry.status().code(), ErrorCode::kNotFound);
  // Still readable throughout.
  EXPECT_TRUE(fs->ReadFile("/private").ok());
  fs->DrainBackground();
}

TEST_P(ScfsTest, PnsSharedFileVisibleToOtherUser) {
  auto alice = MountAgent("alice", ScfsMode::kBlocking, /*use_pns=*/true);
  auto bob = MountAgent("bob");
  ASSERT_TRUE(alice->WriteFile("/doc", ToBytes("pns shared")).ok());
  ASSERT_TRUE(alice->SetFacl("/doc", "bob", true, false).ok());
  env_->Sleep(kSecond);
  auto read = bob->ReadFile("/doc");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(ToString(*read), "pns shared");
}

TEST_P(ScfsTest, GarbageCollectorTrimsOldVersions) {
  ScfsOptions options;
  options.mode = ScfsMode::kBlocking;
  options.gc.enabled = false;  // run manually
  options.gc.versions_to_keep = 2;
  auto fs = deployment_->Mount("alice", options);
  ASSERT_TRUE(fs.ok());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        (*fs)->WriteFile("/f", ToBytes("version " + std::to_string(i))).ok());
  }
  auto stat = (*fs)->Stat("/f");
  ASSERT_TRUE(stat.ok());

  // Find the object id through the metadata service.
  auto md = (*fs)->metadata_service().Get("/f");
  ASSERT_TRUE(md.ok());
  auto before = (*fs)->storage_service().backend().ListVersions(md->object_id);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 5u);

  ASSERT_TRUE((*fs)->RunGarbageCollection().ok());
  auto after = (*fs)->storage_service().backend().ListVersions(md->object_id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 2u);
  // The live version survives.
  EXPECT_EQ(ToString(*(*fs)->ReadFile("/f")), "version 4");
}

TEST_P(ScfsTest, GarbageCollectorReclaimsDeletedFiles) {
  ScfsOptions options;
  options.gc.enabled = false;
  auto fs = deployment_->Mount("alice", options);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->WriteFile("/f", ToBytes("doomed")).ok());
  auto md = (*fs)->metadata_service().Get("/f");
  ASSERT_TRUE(md.ok());
  ASSERT_TRUE((*fs)->Unlink("/f").ok());
  // Data still in the cloud (recoverable) until GC runs.
  auto versions = (*fs)->storage_service().backend().ListVersions(md->object_id);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), 1u);
  ASSERT_TRUE((*fs)->RunGarbageCollection().ok());
  versions = (*fs)->storage_service().backend().ListVersions(md->object_id);
  // Unit gone (empty list or not found are both acceptable).
  EXPECT_TRUE(!versions.ok() || versions->empty());
}

TEST_P(ScfsTest, MemoryCacheServesRepeatedReads) {
  auto fs = MountAgent("alice");
  Bytes data(100 * 1024, 7);
  ASSERT_TRUE(fs->WriteFile("/f", data).ok());
  uint64_t cloud_reads_before = fs->storage_service().cloud_reads();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs->ReadFile("/f").ok());
  }
  // Always-write/avoid-reading: all these reads resolve locally.
  EXPECT_EQ(fs->storage_service().cloud_reads(), cloud_reads_before);
  EXPECT_GE(fs->storage_service().memory_hits(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ScfsTest,
                         ::testing::Values(ScfsBackendKind::kAws,
                                           ScfsBackendKind::kCoc),
                         [](const ::testing::TestParamInfo<ScfsBackendKind>& i) {
                           return i.param == ScfsBackendKind::kAws ? "Aws"
                                                                   : "CoC";
                         });

// ---------------------------------------------------------------------------
// CoC-specific fault tolerance and consistency-anchor behaviour.
// ---------------------------------------------------------------------------

class ScfsCocTest : public ::testing::Test {
 protected:
  ScfsCocTest() : env_(Environment::Instant()) {
    DeploymentOptions options;
    options.backend = ScfsBackendKind::kCoc;
    options.zero_latency = true;
    deployment_ = Deployment::Create(env_.get(), options);
  }

  std::unique_ptr<Environment> env_;
  std::unique_ptr<Deployment> deployment_;
};

TEST_F(ScfsCocTest, SurvivesSingleCloudOutage) {
  ScfsOptions options;
  auto fs = deployment_->Mount("alice", options);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->WriteFile("/f", ToBytes("before outage")).ok());

  deployment_->cloud(0)->faults().SetUnavailable(true);
  // Reads and writes continue.
  EXPECT_EQ(ToString(*(*fs)->ReadFile("/f")), "before outage");
  ASSERT_TRUE((*fs)->WriteFile("/g", ToBytes("during outage")).ok());
  deployment_->cloud(0)->faults().SetUnavailable(false);

  // Fresh agent (empty caches) can read everything.
  auto fresh = deployment_->Mount("alice", ScfsOptions{});
  ASSERT_TRUE(fresh.ok());
  env_->Sleep(kSecond);
  EXPECT_EQ(ToString(*(*fresh)->ReadFile("/g")), "during outage");
}

TEST_F(ScfsCocTest, SurvivesCloudCorruption) {
  auto fs = deployment_->Mount("alice", ScfsOptions{});
  ASSERT_TRUE(fs.ok());
  Bytes data(20000, 9);
  ASSERT_TRUE((*fs)->WriteFile("/f", data).ok());
  deployment_->cloud(1)->faults().SetCorruptAllReads(true);
  // A cache-cold agent must detect the bad shard and recover elsewhere.
  auto fresh = deployment_->Mount("alice", ScfsOptions{});
  ASSERT_TRUE(fresh.ok());
  env_->Sleep(kSecond);
  auto read = (*fresh)->ReadFile("/f");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
  deployment_->cloud(1)->faults().SetCorruptAllReads(false);
}

TEST_F(ScfsCocTest, AnchoredStorageAlgorithm) {
  // The decoupled Figure 3 algorithm over the real substrates.
  SingleCloudBackend backend(deployment_->cloud(0),
                             CloudCredentials{"amazon-s3:alice"});
  AnchorOptions anchor_options;
  anchor_options.retry_delay = 10 * kMillisecond;
  AnchoredStorage anchored(env_.get(), deployment_->coord(), "alice",
                           &backend, anchor_options);
  Bytes v1 = ToBytes("anchored v1");
  ASSERT_TRUE(anchored.Write("obj", v1).ok());
  EXPECT_EQ(*anchored.Read("obj"), v1);
  Bytes v2 = ToBytes("anchored v2");
  ASSERT_TRUE(anchored.Write("obj", v2).ok());
  EXPECT_EQ(*anchored.Read("obj"), v2);
}

TEST_F(ScfsCocTest, AnchoredStorageAsyncPipeline) {
  // The async variants preserve the anchored order (SS write before CA
  // publish, CA read before SS fetch) while letting callers overlap whole
  // anchored operations: fan out writes to distinct ids, then read them all
  // back through futures.
  SingleCloudBackend backend(deployment_->cloud(0),
                             CloudCredentials{"amazon-s3:alice"});
  AnchorOptions anchor_options;
  anchor_options.retry_delay = 10 * kMillisecond;
  AnchoredStorage anchored(env_.get(), deployment_->coord(), "alice",
                           &backend, anchor_options);
  constexpr int kObjects = 6;
  std::vector<Future<Status>> writes;
  for (int i = 0; i < kObjects; ++i) {
    Bytes value = ToBytes("async v" + std::to_string(i));
    writes.push_back(anchored.WriteAsync("obj" + std::to_string(i), value));
  }
  for (auto& write : writes) {
    EXPECT_TRUE(write.Get().ok());
  }
  std::vector<Future<Result<Bytes>>> reads;
  for (int i = 0; i < kObjects; ++i) {
    reads.push_back(anchored.ReadAsync("obj" + std::to_string(i)));
  }
  for (int i = 0; i < kObjects; ++i) {
    Result<Bytes> value = reads[i].Get();
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(ToString(*value), "async v" + std::to_string(i));
  }
}

TEST_F(ScfsCocTest, AnchoredReadLoopsUntilVisible) {
  // Non-zero consistency window: the anchor hash is immediately current, but
  // the data appears only later; Read must spin, not return stale data.
  CloudProfile profile;
  profile.name = "windowed";
  profile.consistency_window_base = 200 * kMillisecond;
  SimulatedCloud cloud(profile, env_.get(), 77);
  SingleCloudBackend backend(&cloud, CloudCredentials{"u"});
  LocalCoordination coord(env_.get(), LatencyModel::None());
  AnchorOptions anchor_options;
  anchor_options.retry_delay = 20 * kMillisecond;
  AnchoredStorage anchored(env_.get(), &coord, "u", &backend, anchor_options);

  // Note: version objects are keyed id|hash => new keys, which the simulated
  // S3 treats as immediately visible. To exercise the loop we need an
  // overwrite: write the same content id|hash twice with different bytes is
  // impossible by construction, so instead verify the PNS-style ReadLatest
  // lag at the cloud level and the anchored read's immunity to it.
  Bytes v1 = ToBytes("v1");
  Bytes v2 = ToBytes("v2");
  ASSERT_TRUE(anchored.Write("obj", v1).ok());
  env_->Sleep(kSecond);
  ASSERT_TRUE(anchored.Write("obj", v2).ok());
  EXPECT_EQ(*anchored.Read("obj"), v2);  // anchor always current
}

TEST(ScfsPartitionedTest, CocDeploymentWithPartitionedCoordination) {
  // End-to-end over the sharded coordination plane: the full CoC deployment
  // (real link latencies, DepSky storage) with the coordination keys hashed
  // over 4 SMR partitions. Metadata, locking, sharing and rename must
  // behave exactly as with one cluster — only the plumbing is sharded.
  auto env = Environment::Scaled(1e-3);
  DeploymentOptions options;
  options.backend = ScfsBackendKind::kCoc;
  options.coord_partitions = 4;
  auto deployment = Deployment::Create(env.get(), options);
  ASSERT_NE(deployment->partitioned_coord(), nullptr);
  EXPECT_EQ(deployment->coord()->partition_count(), 4u);

  auto fs = deployment->Mount("alice", ScfsOptions{});
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  ASSERT_TRUE((*fs)->Mkdir("/docs").ok());
  ASSERT_TRUE((*fs)->WriteFile("/docs/a.txt", ToBytes("alpha")).ok());
  ASSERT_TRUE((*fs)->WriteFile("/docs/b.txt", ToBytes("beta")).ok());
  EXPECT_EQ(ToString(*(*fs)->ReadFile("/docs/a.txt")), "alpha");
  // Directory listing is a scatter-gather prefix read across partitions.
  auto listed = (*fs)->ReadDir("/docs");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);
  // Rename rides the cross-partition intent-record protocol.
  ASSERT_TRUE((*fs)->Rename("/docs", "/papers").ok());
  EXPECT_EQ(ToString(*(*fs)->ReadFile("/papers/b.txt")), "beta");
  EXPECT_FALSE((*fs)->ReadFile("/docs/b.txt").ok());
}

}  // namespace
}  // namespace scfs
