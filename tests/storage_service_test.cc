// Unit tests for the SCFS storage service: two-level content-addressed
// caching, disk spill-over, the always-write/avoid-reading discipline and the
// consistency-anchor read loop.

#include <gtest/gtest.h>

#include "src/cloud/simulated_cloud.h"
#include "src/crypto/sha1.h"
#include "src/scfs/blob_backend.h"
#include "src/scfs/storage_service.h"

namespace scfs {
namespace {

std::string HashOf(const Bytes& data) { return HexEncode(Sha1::Hash(data)); }

class StorageServiceTest : public ::testing::Test {
 protected:
  StorageServiceTest()
      : env_(Environment::Instant()),
        cloud_(CloudProfile{}, env_.get(), 1),
        backend_(&cloud_, CloudCredentials{"u"}) {}

  StorageService MakeService(size_t memory_bytes, size_t disk_bytes) {
    StorageServiceOptions options;
    options.memory_cache_bytes = memory_bytes;
    options.disk_cache_bytes = disk_bytes;
    options.read_backoff = BackoffPolicy::Fixed(kMillisecond);
    options.max_read_retries = 20;
    return StorageService(env_.get(), &backend_, options);
  }

  std::unique_ptr<Environment> env_;
  SimulatedCloud cloud_;
  SingleCloudBackend backend_;
};

TEST_F(StorageServiceTest, PushThenFetchIsMemoryHit) {
  auto service = MakeService(1 << 20, 10 << 20);
  Bytes data = ToBytes("cached content");
  ASSERT_TRUE(service.Push("obj", HashOf(data), data, {}).ok());
  auto fetched = service.Fetch("obj", HashOf(data));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, data);
  EXPECT_EQ(service.memory_hits(), 1u);
  EXPECT_EQ(service.cloud_reads(), 0u);
}

TEST_F(StorageServiceTest, PushIsDurableInCloud) {
  auto service = MakeService(1 << 20, 10 << 20);
  Bytes data = ToBytes("durable");
  ASSERT_TRUE(service.Push("obj", HashOf(data), data, {}).ok());
  // A different service instance (fresh caches) reads it from the cloud.
  auto other = MakeService(1 << 20, 10 << 20);
  auto fetched = other.Fetch("obj", HashOf(data));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, data);
  EXPECT_EQ(other.cloud_reads(), 1u);
}

TEST_F(StorageServiceTest, MemoryEvictionSpillsToDisk) {
  // Budget for ~2 x 1KB objects; the third insert evicts the LRU to disk.
  auto service = MakeService(2048, 1 << 20);
  Bytes a(1000, 'a');
  Bytes b(1000, 'b');
  Bytes c(1000, 'c');
  service.PutMemory("A", HashOf(a), a);
  service.PutMemory("B", HashOf(b), b);
  service.PutMemory("C", HashOf(c), c);  // evicts A to disk
  EXPECT_TRUE(service.HasLocal("A", HashOf(a)));
  auto fetched = service.Fetch("A", HashOf(a));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, a);
  EXPECT_GE(service.disk_hits(), 1u);
  EXPECT_EQ(service.cloud_reads(), 0u);
}

TEST_F(StorageServiceTest, ContentAddressingDistinguishesVersions) {
  auto service = MakeService(1 << 20, 10 << 20);
  Bytes v1 = ToBytes("version 1");
  Bytes v2 = ToBytes("version 2!");
  ASSERT_TRUE(service.Push("obj", HashOf(v1), v1, {}).ok());
  ASSERT_TRUE(service.Push("obj", HashOf(v2), v2, {}).ok());
  EXPECT_EQ(*service.Fetch("obj", HashOf(v1)), v1);
  EXPECT_EQ(*service.Fetch("obj", HashOf(v2)), v2);
  // A hash we never stored is not served from any cache.
  EXPECT_FALSE(service.HasLocal("obj", HashOf(ToBytes("version 3"))));
}

TEST_F(StorageServiceTest, EmptyHashMeansEmptyFile) {
  auto service = MakeService(1 << 20, 10 << 20);
  auto fetched = service.Fetch("whatever", "");
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE(fetched->empty());
}

TEST_F(StorageServiceTest, ReadLoopWaitsOutConsistencyWindow) {
  // The backend sees the version only after its visibility window; Fetch must
  // retry (Figure 3 r2) instead of failing.
  CloudProfile windowed;
  windowed.consistency_window_base = 5 * kMillisecond;
  SimulatedCloud cloud(windowed, env_.get(), 2);
  SingleCloudBackend backend(&cloud, CloudCredentials{"u"});
  StorageServiceOptions options;
  options.read_backoff = BackoffPolicy::Fixed(kMillisecond);
  options.max_read_retries = 50;
  StorageService service(env_.get(), &backend, options);

  // Simulate "another client wrote v2": the value object key id|hash is new
  // (instantly visible in S3 semantics), so instead exercise the loop with a
  // key that only appears later.
  Bytes data = ToBytes("late");
  std::string hash = HashOf(data);
  // Write directly after a delay marker: first Fetch attempts will miss.
  auto miss = service.Fetch("obj", hash);
  EXPECT_FALSE(miss.ok());  // never written: exhausts retries
  EXPECT_EQ(miss.status().code(), ErrorCode::kTimeout);
  EXPECT_GE(service.read_retries(), 1u);

  ASSERT_TRUE(backend.WriteVersion("obj", hash, data, {}).ok());
  auto hit = service.Fetch("obj", hash);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, data);
}

TEST_F(StorageServiceTest, FlushToDiskGivesLevel1Durability) {
  auto service = MakeService(1 << 20, 10 << 20);
  Bytes data = ToBytes("fsynced");
  ASSERT_TRUE(service.FlushToDisk("obj", HashOf(data), data).ok());
  EXPECT_TRUE(service.HasLocal("obj", HashOf(data)));
  // Not pushed to the cloud by fsync.
  EXPECT_EQ(backend_.ReadByHash("obj", HashOf(data)).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(StorageServiceTest, CorruptCloudReadSurfacesAsError) {
  auto service = MakeService(1 << 20, 10 << 20);
  Bytes data(4096, 7);
  ASSERT_TRUE(backend_.WriteVersion("obj", HashOf(data), data, {}).ok());
  cloud_.faults().SetCorruptAllReads(true);
  auto fetched = service.Fetch("obj", HashOf(data));
  // The single-cloud backend has no redundancy: the fetch returns corrupted
  // bytes; SCFS's open path detects this via the anchor-hash check. Verify
  // the bytes indeed mismatch the hash so that check would fire.
  if (fetched.ok()) {
    EXPECT_NE(HashOf(*fetched), HashOf(data));
  }
  cloud_.faults().SetCorruptAllReads(false);
}

TEST_F(StorageServiceTest, CountersTrackHitClasses) {
  auto service = MakeService(1 << 20, 10 << 20);
  Bytes data = ToBytes("counted");
  ASSERT_TRUE(backend_.WriteVersion("obj", HashOf(data), data, {}).ok());
  ASSERT_TRUE(service.Fetch("obj", HashOf(data)).ok());  // cloud
  ASSERT_TRUE(service.Fetch("obj", HashOf(data)).ok());  // memory
  EXPECT_EQ(service.cloud_reads(), 1u);
  EXPECT_EQ(service.memory_hits(), 1u);
}

}  // namespace
}  // namespace scfs
