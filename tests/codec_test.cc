// Tests for GF(2^8) arithmetic, matrix inversion and Reed-Solomon erasure
// coding, including exhaustive erasure-pattern sweeps for the DepSky
// configuration RS(4, 2).

#include <gtest/gtest.h>

#include <cstring>

#include "src/codec/reed_solomon.h"
#include "src/common/rng.h"
#include "src/math/gf256.h"
#include "src/math/matrix.h"

namespace scfs {
namespace {

TEST(Gf256Test, AddIsXor) {
  EXPECT_EQ(Gf256::Add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(Gf256::Add(7, 7), 0);
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), 0), 0);
  }
}

TEST(Gf256Test, MulCommutativeAssociative) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.NextU64());
    uint8_t b = static_cast<uint8_t>(rng.NextU64());
    uint8_t c = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c), Gf256::Mul(a, Gf256::Mul(b, c)));
  }
}

TEST(Gf256Test, DistributiveOverAdd) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.NextU64());
    uint8_t b = static_cast<uint8_t>(rng.NextU64());
    uint8_t c = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Gf256::Mul(a, Gf256::Add(b, c)),
              Gf256::Add(Gf256::Mul(a, b), Gf256::Mul(a, c)));
  }
}

TEST(Gf256Test, InverseIsExact) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = Gf256::Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256Test, DivMatchesMulByInverse) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.NextU64());
    uint8_t b = static_cast<uint8_t>(rng.NextU64() | 1);
    if (b == 0) {
      continue;
    }
    EXPECT_EQ(Gf256::Div(a, b), Gf256::Mul(a, Gf256::Inv(b)));
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  for (int a = 1; a < 20; ++a) {
    uint8_t acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(Gf256::Pow(static_cast<uint8_t>(a), e), acc);
      acc = Gf256::Mul(acc, static_cast<uint8_t>(a));
    }
  }
}

TEST(Gf256Test, ExpLogRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(Gf256::Exp(Gf256::Log(static_cast<uint8_t>(a))), a);
  }
}

TEST(Gf256Test, MulAddRow) {
  Bytes out(16, 0);
  Bytes in(16);
  for (int i = 0; i < 16; ++i) {
    in[i] = static_cast<uint8_t>(i + 1);
  }
  Gf256::MulAddRow(out.data(), in.data(), 3, 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i], Gf256::Mul(in[i], 3));
  }
  // Adding again cancels (characteristic 2).
  Gf256::MulAddRow(out.data(), in.data(), 3, 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i], 0);
  }
}

TEST(GfMatrixTest, IdentityInvertsToItself) {
  GfMatrix id = GfMatrix::Identity(5);
  GfMatrix inv(5, 5);
  ASSERT_TRUE(id.Invert(&inv));
  for (unsigned i = 0; i < 5; ++i) {
    for (unsigned j = 0; j < 5; ++j) {
      EXPECT_EQ(inv.At(i, j), i == j ? 1 : 0);
    }
  }
}

TEST(GfMatrixTest, RandomMatrixTimesInverseIsIdentity) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    GfMatrix m(6, 6);
    for (unsigned i = 0; i < 6; ++i) {
      for (unsigned j = 0; j < 6; ++j) {
        m.Set(i, j, static_cast<uint8_t>(rng.NextU64()));
      }
    }
    GfMatrix inv(6, 6);
    if (!m.Invert(&inv)) {
      continue;  // singular draw
    }
    GfMatrix product = m.Mul(inv);
    for (unsigned i = 0; i < 6; ++i) {
      for (unsigned j = 0; j < 6; ++j) {
        EXPECT_EQ(product.At(i, j), i == j ? 1 : 0);
      }
    }
  }
}

TEST(GfMatrixTest, SingularMatrixDetected) {
  GfMatrix m(2, 2);  // all zeros
  GfMatrix inv(2, 2);
  EXPECT_FALSE(m.Invert(&inv));
}

TEST(GfMatrixTest, SystematicVandermondeTopIsIdentity) {
  GfMatrix m = GfMatrix::SystematicVandermonde(6, 3);
  for (unsigned i = 0; i < 3; ++i) {
    for (unsigned j = 0; j < 3; ++j) {
      EXPECT_EQ(m.At(i, j), i == j ? 1 : 0);
    }
  }
}

TEST(GfMatrixTest, SystematicVandermondeAnyKRowsInvertible) {
  // RS(5,3): every 3-row subset must be invertible.
  GfMatrix m = GfMatrix::SystematicVandermonde(5, 3);
  for (unsigned a = 0; a < 5; ++a) {
    for (unsigned b = a + 1; b < 5; ++b) {
      for (unsigned c = b + 1; c < 5; ++c) {
        GfMatrix sub = m.SelectRows({a, b, c});
        GfMatrix inv(3, 3);
        EXPECT_TRUE(sub.Invert(&inv)) << a << b << c;
      }
    }
  }
}

struct RsParam {
  unsigned n;
  unsigned k;
};

class ReedSolomonParamTest : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonParamTest, AllErasurePatternsDecode) {
  const auto param = GetParam();
  Rng rng(100 + param.n * 16 + param.k);
  ReedSolomon rs(param.n, param.k);

  std::vector<Bytes> data(param.k);
  for (auto& shard : data) {
    shard = rng.RandomBytes(64);
  }
  auto encoded = rs.EncodeShards(data);
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ(encoded->size(), param.n);

  // Every subset of exactly k shards must reconstruct the data.
  std::vector<bool> take(param.n, false);
  std::fill(take.begin(), take.begin() + param.k, true);
  std::sort(take.begin(), take.end());
  do {
    std::vector<std::optional<Bytes>> shards(param.n);
    for (unsigned i = 0; i < param.n; ++i) {
      if (take[i]) {
        shards[i] = (*encoded)[i];
      }
    }
    auto decoded = rs.DecodeShards(shards);
    ASSERT_TRUE(decoded.ok());
    for (unsigned i = 0; i < param.k; ++i) {
      EXPECT_EQ((*decoded)[i], data[i]);
    }
  } while (std::next_permutation(take.begin(), take.end()));
}

TEST_P(ReedSolomonParamTest, TooFewShardsFails) {
  const auto param = GetParam();
  if (param.k < 2) {
    GTEST_SKIP();
  }
  Rng rng(7);
  ReedSolomon rs(param.n, param.k);
  std::vector<Bytes> data(param.k, rng.RandomBytes(16));
  auto encoded = rs.EncodeShards(data);
  ASSERT_TRUE(encoded.ok());
  std::vector<std::optional<Bytes>> shards(param.n);
  for (unsigned i = 0; i < param.k - 1; ++i) {
    shards[i] = (*encoded)[i];
  }
  EXPECT_FALSE(rs.DecodeShards(shards).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ReedSolomonParamTest,
    ::testing::Values(RsParam{4, 2}, RsParam{4, 3}, RsParam{7, 4},
                      RsParam{6, 2}, RsParam{5, 5}, RsParam{3, 1}),
    [](const ::testing::TestParamInfo<RsParam>& info) {
      return "n" + std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k);
    });

TEST(ErasureCodecTest, RoundTripVariousSizes) {
  Rng rng(9);
  ErasureCodec codec(4, 2);  // DepSky f=1 configuration
  for (size_t size : {0u, 1u, 7u, 100u, 4096u, 100000u}) {
    Bytes data = rng.RandomBytes(size);
    auto shards = codec.Encode(data);
    ASSERT_TRUE(shards.ok());
    ASSERT_EQ(shards->size(), 4u);
    // Drop shards 1 and 3 (any two survive).
    std::vector<std::optional<Bytes>> have(4);
    have[0] = (*shards)[0];
    have[2] = (*shards)[2];
    auto decoded = codec.Decode(have);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(ErasureCodecTest, ShardSizeIsHalfPlusHeader) {
  ErasureCodec codec(4, 2);
  // The paper: "two clouds store half of the file each" — shard size is about
  // |F|/2 (plus the 8-byte frame header and padding).
  size_t file = 1024 * 1024;
  size_t shard = codec.ShardSize(file);
  EXPECT_GE(shard, file / 2);
  EXPECT_LE(shard, file / 2 + 16);
}

TEST(ErasureCodecTest, DecodeDetectsBadHeader) {
  ErasureCodec codec(4, 2);
  std::vector<std::optional<Bytes>> shards(4);
  shards[0] = Bytes(16, 0xff);  // length header says 2^64-ish
  shards[1] = Bytes(16, 0xff);
  EXPECT_FALSE(codec.Decode(shards).ok());
}

TEST(ArenaPoolTest, ReusesBuffersAndCountsHits) {
  ErasureCodec codec(4, 2);
  ArenaPool pool;
  EXPECT_EQ(pool.hits(), 0u);

  ShardArena first = codec.PrepareArena(1000, &pool);
  EXPECT_EQ(pool.misses(), 1u);
  pool.Release(std::move(first));
  EXPECT_EQ(pool.retained(), 1u);

  ShardArena second = codec.PrepareArena(1000, &pool);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.retained(), 0u);
  pool.Release(std::move(second));
}

TEST(ArenaPoolTest, PooledEncodeMatchesFreshEncode) {
  Rng rng(11);
  ErasureCodec codec(4, 2);
  ArenaPool pool;
  // Cycle one buffer through different payload sizes (including shrinking,
  // so stale bytes from the larger encode sit in the recycled buffer) and
  // check every pooled encode is byte-identical to a fresh-arena encode.
  for (size_t size : {4096u, 100000u, 777u, 100000u, 0u, 63u}) {
    Bytes data = rng.RandomBytes(size);
    ShardArena pooled = codec.PrepareArena(size, &pool);
    ShardArena fresh = codec.PrepareArena(size);
    if (!data.empty()) {
      std::memcpy(pooled.payload().data(), data.data(), data.size());
      std::memcpy(fresh.payload().data(), data.data(), data.size());
    }
    codec.ComputeParity(&pooled);
    codec.ComputeParity(&fresh);

    for (unsigned i = 0; i < 4; ++i) {
      ASSERT_EQ(CopyToBytes(pooled.shard(i)), CopyToBytes(fresh.shard(i)))
          << "size=" << size << " shard=" << i;
    }
    pool.Release(std::move(pooled));
  }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 5u);
}

TEST(ArenaPoolTest, RetainsAtMostMaxArenas) {
  ErasureCodec codec(4, 2);
  ArenaPool pool(2);
  ShardArena a = codec.PrepareArena(64, &pool);
  ShardArena b = codec.PrepareArena(64, &pool);
  ShardArena c = codec.PrepareArena(64, &pool);
  pool.Release(std::move(a));
  pool.Release(std::move(b));
  pool.Release(std::move(c));
  EXPECT_EQ(pool.retained(), 2u);
  // Releasing a moved-from/empty arena is a no-op.
  ShardArena empty;
  pool.Release(std::move(empty));
  EXPECT_EQ(pool.retained(), 2u);
}

TEST(ErasureCodecTest, StorageOverheadMatchesPaper) {
  // CoC stores n/k = 2x the file with RS(4,2) but only 1.5x with preferred
  // quorums (3 of 4 shards uploaded) — checked at the DepSky layer; here we
  // verify the raw shard math.
  ErasureCodec codec(4, 2);
  Bytes data(10000, 1);
  auto shards = codec.Encode(data);
  ASSERT_TRUE(shards.ok());
  size_t three_shards = 3 * (*shards)[0].size();
  EXPECT_NEAR(static_cast<double>(three_shards),
              1.5 * static_cast<double>(data.size()), 100.0);
}

}  // namespace
}  // namespace scfs
